(** Lowering Mini-C to the SSA IR.

    Locals become allocas + loads/stores ([Ir.Mem2reg] subsequently promotes
    the scalars), control flow becomes explicit CFG blocks — [while]/[for]
    lower to while-shaped loops (test before body) and [do]/[while] to
    do-while shape, which is exactly the property the paper's §4.3 governing
    induction-variable experiment depends on. *)

module Cparser = Parser
open Ir
open Ast

exception Error of string

let faill fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Builtin signatures: name -> (param types, return type) *)
let builtins : (string * (ty list * ty)) list =
  [
    ("print", ([ Tint ], Tvoid));
    ("print_float", ([ Tfloat ], Tvoid));
    ("malloc", ([ Tint ], Tptr Tint));
    ("free", ([ Tptr Tint ], Tvoid));
    ("rand", ([], Tint));
    ("srand", ([ Tint ], Tvoid));
    ("clock", ([], Tint));
    ("sqrt", ([ Tfloat ], Tfloat));
    ("exp", ([ Tfloat ], Tfloat));
    ("log", ([ Tfloat ], Tfloat));
    ("sin", ([ Tfloat ], Tfloat));
    ("cos", ([ Tfloat ], Tfloat));
    ("fabs", ([ Tfloat ], Tfloat));
    ("floor", ([ Tfloat ], Tfloat));
    ("pow", ([ Tfloat; Tfloat ], Tfloat));
    ("i64_min", ([ Tint; Tint ], Tint));
    ("i64_max", ([ Tint; Tint ], Tint));
  ]

let ir_ty = function
  | Tint -> Ty.I64
  | Tfloat -> Ty.F64
  | Tptr _ -> Ty.Ptr
  | Tvoid -> Ty.Void

type entry =
  | Elocal of Instr.value * ty * bool   (** alloca address, element type, is_array *)
  | Eglobal of string * ty * bool
  | Efun of string                      (** user function or builtin *)

type fnsig = { sparams : ty list; sret : ty }

type ctx = {
  m : Irmod.t;
  f : Func.t;
  mutable cur : int;                    (** current block id *)
  mutable scopes : (string * entry) list list;
  mutable loop_stack : (int * int) list;  (** (break target, continue target) *)
  sigs : (string, fnsig) Hashtbl.t;
  used_builtins : (string, unit) Hashtbl.t;
  ret_ty : ty;
}

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes
let pop_scope ctx = ctx.scopes <- List.tl ctx.scopes
let bind ctx name e =
  ctx.scopes <- ((name, e) :: List.hd ctx.scopes) :: List.tl ctx.scopes

let lookup ctx name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
      match List.assoc_opt name s with Some e -> Some e | None -> go rest)
  in
  go ctx.scopes

let new_block ctx label = (Builder.add_block ctx.f ~label).Func.bid

let terminated ctx =
  match Func.terminator ctx.f ctx.cur with Some _ -> true | None -> false

let emit ctx op ty = Instr.Reg (Builder.add ctx.f ctx.cur op ty).Instr.id
let emit_void ctx op = ignore (Builder.add ctx.f ctx.cur op Ty.Void)

let coerce ctx (v, from_t) to_t : Instr.value =
  match (from_t, to_t) with
  | Tint, Tint | Tfloat, Tfloat | Tvoid, Tvoid -> v
  | Tptr _, Tptr _ -> v
  | Tint, Tfloat -> emit ctx (Instr.Cast (Instr.Sitofp, v)) Ty.F64
  | Tfloat, Tint -> emit ctx (Instr.Cast (Instr.Fptosi, v)) Ty.I64
  | Tint, Tptr _ -> emit ctx (Instr.Cast (Instr.Inttoptr, v)) Ty.Ptr
  | Tptr _, Tint -> emit ctx (Instr.Cast (Instr.Ptrtoint, v)) Ty.I64
  | a, b -> faill "cannot convert %s to %s" (ty_to_string a) (ty_to_string b)

let boolify ctx (v, t) =
  match t with
  | Tint -> emit ctx (Instr.Icmp (Instr.Ne, v, Instr.Cint 0L)) Ty.I64
  | Tfloat -> emit ctx (Instr.Fcmp (Instr.Ne, v, Instr.Cfloat 0.0)) Ty.I64
  | Tptr _ -> emit ctx (Instr.Icmp (Instr.Ne, v, Instr.Null)) Ty.I64
  | Tvoid -> faill "void value in boolean context"

let cmp_of = function
  | "==" -> Instr.Eq | "!=" -> Instr.Ne | "<" -> Instr.Slt
  | "<=" -> Instr.Sle | ">" -> Instr.Sgt | ">=" -> Instr.Sge
  | op -> faill "not a comparison: %s" op

let ibin_of = function
  | "+" -> Instr.Add | "-" -> Instr.Sub | "*" -> Instr.Mul
  | "/" -> Instr.Sdiv | "%" -> Instr.Srem | "&" -> Instr.And
  | "|" -> Instr.Or | "^" -> Instr.Xor | "<<" -> Instr.Shl | ">>" -> Instr.Ashr
  | op -> faill "not an integer operator: %s" op

let fbin_of = function
  | "+" -> Instr.Fadd | "-" -> Instr.Fsub | "*" -> Instr.Fmul | "/" -> Instr.Fdiv
  | op -> faill "operator %s not defined on float" op

(** Lower an expression; returns (value, type). *)
let rec lower_expr ctx (e : expr) : Instr.value * ty =
  match e with
  | Eint n -> (Instr.Cint n, Tint)
  | Efloat f -> (Instr.Cfloat f, Tfloat)
  | Evar name -> (
    match lookup ctx name with
    | Some (Elocal (addr, ety, true)) -> (addr, Tptr ety)
    | Some (Elocal (addr, ety, false)) ->
      (emit ctx (Instr.Load addr) (ir_ty ety), ety)
    | Some (Eglobal (g, ety, true)) -> (Instr.Glob g, Tptr ety)
    | Some (Eglobal (g, ety, false)) ->
      (emit ctx (Instr.Load (Instr.Glob g)) (ir_ty ety), ety)
    | Some (Efun f) -> (Instr.Glob f, Tptr Tvoid)
    | None ->
      if Hashtbl.mem ctx.sigs name || List.mem_assoc name builtins then
        (Instr.Glob name, Tptr Tvoid)
      else faill "unknown variable %s" name)
  | Eidx (b, i) ->
    let addr, ety = lower_addr_idx ctx b i in
    (emit ctx (Instr.Load addr) (ir_ty ety), ety)
  | Ederef p -> (
    let v, t = lower_expr ctx p in
    match t with
    | Tptr ety -> (emit ctx (Instr.Load v) (ir_ty ety), ety)
    | _ -> faill "dereference of non-pointer")
  | Eaddr lv -> lower_lvalue_addr ctx lv
  | Efunref f -> (Instr.Glob f, Tptr Tvoid)
  | Ecall (name, args) -> (
    (* a variable holding a function pointer shadows function names *)
    match lookup ctx name with
    | Some (Elocal _ | Eglobal _) ->
      let fv, _ = lower_expr ctx (Evar name) in
      lower_indirect_call ctx fv args
    | _ -> lower_direct_call ctx name args)
  | Ecallptr (f, args) ->
    let fv, _ = lower_expr ctx f in
    lower_indirect_call ctx fv args
  | Eun (Neg, a) -> (
    let v, t = lower_expr ctx a in
    match t with
    | Tint -> (emit ctx (Instr.Bin (Instr.Sub, Instr.Cint 0L, v)) Ty.I64, Tint)
    | Tfloat -> (emit ctx (Instr.Fbin (Instr.Fsub, Instr.Cfloat 0.0, v)) Ty.F64, Tfloat)
    | _ -> faill "negation of non-numeric")
  | Eun (Not, a) ->
    let v = boolify ctx (lower_expr ctx a) in
    (emit ctx (Instr.Icmp (Instr.Eq, v, Instr.Cint 0L)) Ty.I64, Tint)
  | Eun (Bnot, a) ->
    let v, t = lower_expr ctx a in
    if t <> Tint then faill "~ on non-int";
    (emit ctx (Instr.Bin (Instr.Xor, v, Instr.Cint (-1L))) Ty.I64, Tint)
  | Ecast (to_t, a) ->
    let v, from_t = lower_expr ctx a in
    (coerce ctx (v, from_t) to_t, to_t)
  | Ebin (("&&" | "||") as op, a, b) ->
    (* short-circuit with explicit control flow + phi *)
    let av = boolify ctx (lower_expr ctx a) in
    let a_end = ctx.cur in
    let rhs = new_block ctx "sc.rhs" in
    let done_ = new_block ctx "sc.done" in
    if op = "&&" then ignore (Builder.set_term ctx.f a_end (Instr.Cbr (av, rhs, done_)))
    else ignore (Builder.set_term ctx.f a_end (Instr.Cbr (av, done_, rhs)));
    ctx.cur <- rhs;
    let bv = boolify ctx (lower_expr ctx b) in
    let b_end = ctx.cur in
    ignore (Builder.set_term ctx.f b_end (Instr.Br done_));
    ctx.cur <- done_;
    let short = if op = "&&" then Instr.Cint 0L else Instr.Cint 1L in
    let phi =
      Builder.insert_front ctx.f done_ (Instr.Phi [ (a_end, short); (b_end, bv) ]) Ty.I64
    in
    (Instr.Reg phi.Instr.id, Tint)
  | Ebin (("==" | "!=" | "<" | "<=" | ">" | ">=") as op, a, b) -> (
    let va, ta = lower_expr ctx a in
    let vb, tb = lower_expr ctx b in
    match (ta, tb) with
    | Tfloat, _ | _, Tfloat ->
      let va = coerce ctx (va, ta) Tfloat and vb = coerce ctx (vb, tb) Tfloat in
      (emit ctx (Instr.Fcmp (cmp_of op, va, vb)) Ty.I64, Tint)
    | _ -> (emit ctx (Instr.Icmp (cmp_of op, va, vb)) Ty.I64, Tint))
  | Ebin (op, a, b) -> (
    let va, ta = lower_expr ctx a in
    let vb, tb = lower_expr ctx b in
    match (ta, tb) with
    | Tptr ety, Tint when op = "+" ->
      (emit ctx (Instr.Gep (va, vb)) Ty.Ptr, Tptr ety)
    | Tint, Tptr ety when op = "+" ->
      (emit ctx (Instr.Gep (vb, va)) Ty.Ptr, Tptr ety)
    | Tptr ety, Tint when op = "-" ->
      let neg = emit ctx (Instr.Bin (Instr.Sub, Instr.Cint 0L, vb)) Ty.I64 in
      (emit ctx (Instr.Gep (va, neg)) Ty.Ptr, Tptr ety)
    | Tptr _, Tptr _ when op = "-" ->
      let ia = coerce ctx (va, ta) Tint and ib = coerce ctx (vb, tb) Tint in
      (emit ctx (Instr.Bin (Instr.Sub, ia, ib)) Ty.I64, Tint)
    | Tfloat, _ | _, Tfloat ->
      let va = coerce ctx (va, ta) Tfloat and vb = coerce ctx (vb, tb) Tfloat in
      (emit ctx (Instr.Fbin (fbin_of op, va, vb)) Ty.F64, Tfloat)
    | Tint, Tint -> (emit ctx (Instr.Bin (ibin_of op, va, vb)) Ty.I64, Tint)
    | _ -> faill "invalid operands of %s" op)
  | Eternary (c, a, b) ->
    let cv = boolify ctx (lower_expr ctx c) in
    let c_end = ctx.cur in
    let tb = new_block ctx "sel.t" in
    let eb = new_block ctx "sel.e" in
    let done_ = new_block ctx "sel.done" in
    ignore (Builder.set_term ctx.f c_end (Instr.Cbr (cv, tb, eb)));
    ctx.cur <- tb;
    let va, ta = lower_expr ctx a in
    let t_end = ctx.cur in
    ctx.cur <- eb;
    let vb, tbt = lower_expr ctx b in
    let e_end = ctx.cur in
    let ty =
      match (ta, tbt) with
      | Tfloat, _ | _, Tfloat -> Tfloat
      | _ -> ta
    in
    ctx.cur <- t_end;
    let va = coerce ctx (va, ta) ty in
    ignore (Builder.set_term ctx.f t_end (Instr.Br done_));
    ctx.cur <- e_end;
    let vb = coerce ctx (vb, tbt) ty in
    ignore (Builder.set_term ctx.f e_end (Instr.Br done_));
    ctx.cur <- done_;
    let phi =
      Builder.insert_front ctx.f done_
        (Instr.Phi [ (t_end, va); (e_end, vb) ])
        (ir_ty ty)
    in
    (Instr.Reg phi.Instr.id, ty)

(** Address and element type of [base[idx]]. *)
and lower_addr_idx ctx base idx =
  let bv, bt = lower_expr ctx base in
  let ety =
    match bt with
    | Tptr e -> e
    | _ -> faill "indexing a non-pointer (%s)" (ty_to_string bt)
  in
  let iv, it = lower_expr ctx idx in
  if it <> Tint then faill "array index must be int";
  (emit ctx (Instr.Gep (bv, iv)) Ty.Ptr, ety)

(** Address of an lvalue, as (pointer value, pointer type). *)
and lower_lvalue_addr ctx (lv : expr) : Instr.value * ty =
  match lv with
  | Evar name -> (
    match lookup ctx name with
    | Some (Elocal (addr, ety, _)) -> (addr, Tptr ety)
    | Some (Eglobal (g, ety, _)) -> (Instr.Glob g, Tptr ety)
    | Some (Efun f) -> (Instr.Glob f, Tptr Tvoid)
    | None -> faill "unknown variable %s" name)
  | Eidx (b, i) ->
    let addr, ety = lower_addr_idx ctx b i in
    (addr, Tptr ety)
  | Ederef p -> (
    let v, t = lower_expr ctx p in
    match t with
    | Tptr _ -> (v, t)
    | _ -> faill "dereference of non-pointer")
  | _ -> faill "expression is not an lvalue"

and lower_direct_call ctx name args =
  let psig =
    match Hashtbl.find_opt ctx.sigs name with
    | Some s -> s
    | None -> (
      match List.assoc_opt name builtins with
      | Some (ps, r) ->
        Hashtbl.replace ctx.used_builtins name ();
        { sparams = ps; sret = r }
      | None -> faill "call to unknown function %s" name)
  in
  if List.length args <> List.length psig.sparams then
    faill "%s: expected %d arguments, got %d" name (List.length psig.sparams)
      (List.length args);
  let vargs =
    List.map2 (fun a pt -> coerce ctx (lower_expr ctx a) pt) args psig.sparams
  in
  let rty = ir_ty psig.sret in
  if Ty.equal rty Ty.Void then begin
    emit_void ctx (Instr.Call (Instr.Glob name, vargs));
    (Instr.Cint 0L, Tint)
  end
  else (emit ctx (Instr.Call (Instr.Glob name, vargs)) rty, psig.sret)

and lower_indirect_call ctx fv args =
  (* indirect calls are assumed to return int and take the argument types
     as written; this covers the function-pointer tables in the corpus *)
  let vargs = List.map (fun a -> fst (lower_expr ctx a)) args in
  (emit ctx (Instr.Call (fv, vargs)) Ty.I64, Tint)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt ctx (s : stmt) : unit =
  if terminated ctx then begin
    (* unreachable trailing code goes into a fresh dangling block that
       Cfg.prune_unreachable removes *)
    ctx.cur <- new_block ctx "dead"
  end;
  match s with
  | Sblock ss ->
    push_scope ctx;
    List.iter (lower_stmt ctx) ss;
    pop_scope ctx
  | Sdecl (ty, name, None, init) ->
    if ty = Tvoid then faill "void variable %s" name;
    let addr = emit ctx (Instr.Alloca (Instr.Cint 1L)) Ty.Ptr in
    bind ctx name (Elocal (addr, ty, false));
    (match init with
    | Some e ->
      let v = coerce ctx (lower_expr ctx e) ty in
      emit_void ctx (Instr.Store (v, addr))
    | None -> ())
  | Sdecl (ty, name, Some n, init) ->
    if ty = Tvoid then faill "void array %s" name;
    let addr = emit ctx (Instr.Alloca (Instr.Cint (Int64.of_int n))) Ty.Ptr in
    bind ctx name (Elocal (addr, ty, true));
    (match init with
    | Some _ -> faill "array initializers are only supported on globals"
    | None -> ())
  | Sassign (lv, e) ->
    let addr, pt = lower_lvalue_addr ctx lv in
    let ety = (match pt with Tptr t -> t | _ -> assert false) in
    let v = coerce ctx (lower_expr ctx e) ety in
    emit_void ctx (Instr.Store (v, addr))
  | Sopassign (op, lv, e) ->
    (* lower as lv = lv op e, evaluating the address once *)
    let addr, pt = lower_lvalue_addr ctx lv in
    let ety = (match pt with Tptr t -> t | _ -> assert false) in
    let cur = emit ctx (Instr.Load addr) (ir_ty ety) in
    let ev, et = lower_expr ctx e in
    let result =
      match ety with
      | Tfloat ->
        let ev = coerce ctx (ev, et) Tfloat in
        emit ctx (Instr.Fbin (fbin_of op, cur, ev)) Ty.F64
      | Tint ->
        let ev = coerce ctx (ev, et) Tint in
        emit ctx (Instr.Bin (ibin_of op, cur, ev)) Ty.I64
      | Tptr _ when op = "+" || op = "-" ->
        let ev = coerce ctx (ev, et) Tint in
        let ev =
          if op = "-" then emit ctx (Instr.Bin (Instr.Sub, Instr.Cint 0L, ev)) Ty.I64
          else ev
        in
        emit ctx (Instr.Gep (cur, ev)) Ty.Ptr
      | _ -> faill "invalid op-assignment"
    in
    emit_void ctx (Instr.Store (result, addr))
  | Sif (c, then_, else_) ->
    let cv = boolify ctx (lower_expr ctx c) in
    let c_end = ctx.cur in
    let tb = new_block ctx "if.then" in
    let eb = if else_ = [] then None else Some (new_block ctx "if.else") in
    let merge = new_block ctx "if.end" in
    ignore
      (Builder.set_term ctx.f c_end
         (Instr.Cbr (cv, tb, match eb with Some e -> e | None -> merge)));
    ctx.cur <- tb;
    push_scope ctx;
    List.iter (lower_stmt ctx) then_;
    pop_scope ctx;
    if not (terminated ctx) then ignore (Builder.set_term ctx.f ctx.cur (Instr.Br merge));
    (match eb with
    | Some e ->
      ctx.cur <- e;
      push_scope ctx;
      List.iter (lower_stmt ctx) else_;
      pop_scope ctx;
      if not (terminated ctx) then
        ignore (Builder.set_term ctx.f ctx.cur (Instr.Br merge))
    | None -> ());
    ctx.cur <- merge
  | Swhile (c, body) ->
    let header = new_block ctx "while.header" in
    let bodyb = new_block ctx "while.body" in
    let exit = new_block ctx "while.end" in
    ignore (Builder.set_term ctx.f ctx.cur (Instr.Br header));
    ctx.cur <- header;
    let cv = boolify ctx (lower_expr ctx c) in
    ignore (Builder.set_term ctx.f ctx.cur (Instr.Cbr (cv, bodyb, exit)));
    ctx.cur <- bodyb;
    ctx.loop_stack <- (exit, header) :: ctx.loop_stack;
    push_scope ctx;
    List.iter (lower_stmt ctx) body;
    pop_scope ctx;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    if not (terminated ctx) then ignore (Builder.set_term ctx.f ctx.cur (Instr.Br header));
    ctx.cur <- exit
  | Sdo (body, c) ->
    let bodyb = new_block ctx "do.body" in
    let condb = new_block ctx "do.cond" in
    let exit = new_block ctx "do.end" in
    ignore (Builder.set_term ctx.f ctx.cur (Instr.Br bodyb));
    ctx.cur <- bodyb;
    ctx.loop_stack <- (exit, condb) :: ctx.loop_stack;
    push_scope ctx;
    List.iter (lower_stmt ctx) body;
    pop_scope ctx;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    if not (terminated ctx) then ignore (Builder.set_term ctx.f ctx.cur (Instr.Br condb));
    ctx.cur <- condb;
    let cv = boolify ctx (lower_expr ctx c) in
    ignore (Builder.set_term ctx.f ctx.cur (Instr.Cbr (cv, bodyb, exit)));
    ctx.cur <- exit
  | Sfor (init, cond, step, body) ->
    push_scope ctx;
    (match init with Some s -> lower_stmt ctx s | None -> ());
    let header = new_block ctx "for.header" in
    let bodyb = new_block ctx "for.body" in
    let stepb = new_block ctx "for.step" in
    let exit = new_block ctx "for.end" in
    ignore (Builder.set_term ctx.f ctx.cur (Instr.Br header));
    ctx.cur <- header;
    (match cond with
    | Some c ->
      let cv = boolify ctx (lower_expr ctx c) in
      ignore (Builder.set_term ctx.f ctx.cur (Instr.Cbr (cv, bodyb, exit)))
    | None -> ignore (Builder.set_term ctx.f ctx.cur (Instr.Br bodyb)));
    ctx.cur <- bodyb;
    ctx.loop_stack <- (exit, stepb) :: ctx.loop_stack;
    push_scope ctx;
    List.iter (lower_stmt ctx) body;
    pop_scope ctx;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    if not (terminated ctx) then ignore (Builder.set_term ctx.f ctx.cur (Instr.Br stepb));
    ctx.cur <- stepb;
    (match step with Some s -> lower_stmt ctx s | None -> ());
    if not (terminated ctx) then ignore (Builder.set_term ctx.f ctx.cur (Instr.Br header));
    pop_scope ctx;
    ctx.cur <- exit
  | Sreturn e -> (
    match (e, ctx.ret_ty) with
    | None, _ -> ignore (Builder.set_term ctx.f ctx.cur (Instr.Ret None))
    | Some e, rt ->
      let v = coerce ctx (lower_expr ctx e) rt in
      ignore (Builder.set_term ctx.f ctx.cur (Instr.Ret (Some v))))
  | Sbreak -> (
    match ctx.loop_stack with
    | (brk, _) :: _ -> ignore (Builder.set_term ctx.f ctx.cur (Instr.Br brk))
    | [] -> faill "break outside loop")
  | Scontinue -> (
    match ctx.loop_stack with
    | (_, cont) :: _ -> ignore (Builder.set_term ctx.f ctx.cur (Instr.Br cont))
    | [] -> faill "continue outside loop")
  | Sexpr e -> ignore (lower_expr ctx e)

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let const_value = function
  | Eint n -> Instr.Cint n
  | Efloat f -> Instr.Cfloat f
  | Eun (Neg, Eint n) -> Instr.Cint (Int64.neg n)
  | Eun (Neg, Efloat f) -> Instr.Cfloat (-.f)
  | _ -> faill "global initializers must be constants"

(** Lower a parsed program into an IR module.  Does not run mem2reg. *)
let lower_program ?(name = "module") (prog : program) : Irmod.t =
  let m = Irmod.create ~name () in
  let sigs : (string, fnsig) Hashtbl.t = Hashtbl.create 16 in
  let global_env = ref [] in
  (* first pass: signatures and globals *)
  List.iter
    (function
      | Gfun (ret, name, params, _) | Gproto (ret, name, params) ->
        Hashtbl.replace sigs name { sparams = List.map fst params; sret = ret }
      | Gvar (ty, name, arr, init) ->
        if ty = Tvoid then faill "global %s cannot have void type" name;
        let size = match arr with Some n -> n | None -> 1 in
        let init =
          Option.map (fun es -> Array.of_list (List.map const_value es)) init
        in
        Irmod.add_global m { Irmod.gname = name; size; init };
        global_env := (name, Eglobal (name, ty, arr <> None)) :: !global_env)
    prog;
  let used_builtins = Hashtbl.create 8 in
  (* second pass: function bodies *)
  let protos = ref [] in
  List.iter
    (function
      | Gvar _ -> ()
      | Gproto (ret, name, params) -> protos := (ret, name, params) :: !protos
      | Gfun (ret, name, params, body) ->
        let f =
          Func.create ~name
            ~params:(List.map (fun (t, n) -> (n, ir_ty t)) params)
            ~ret:(ir_ty ret)
        in
        Irmod.add_func m f;
        let entry = Builder.add_block f ~label:"entry" in
        let ctx =
          {
            m; f;
            cur = entry.Func.bid;
            scopes = [ [] ; !global_env ];
            loop_stack = [];
            sigs;
            used_builtins;
            ret_ty = ret;
          }
        in
        ignore ctx.m;
        (* spill parameters into allocas so & works and they are mutable *)
        List.iteri
          (fun i (pt, pn) ->
            let addr = emit ctx (Instr.Alloca (Instr.Cint 1L)) Ty.Ptr in
            emit_void ctx (Instr.Store (Instr.Arg i, addr));
            bind ctx pn (Elocal (addr, pt, false)))
          params;
        List.iter (lower_stmt ctx) body;
        if not (terminated ctx) then begin
          match ret with
          | Tvoid -> ignore (Builder.set_term f ctx.cur (Instr.Ret None))
          | Tfloat ->
            ignore (Builder.set_term f ctx.cur (Instr.Ret (Some (Instr.Cfloat 0.0))))
          | _ -> ignore (Builder.set_term f ctx.cur (Instr.Ret (Some (Instr.Cint 0L))))
        end)
    prog;
  (* declare prototypes that no unit in this module defines *)
  List.iter
    (fun (ret, name, params) ->
      if Irmod.func_opt m name = None then
        Irmod.add_func m
          (Func.declare ~name
             ~params:(List.map (fun (t, n) -> (n, ir_ty t)) params)
             ~ret:(ir_ty ret)))
    !protos;
  (* declare used builtins *)
  Hashtbl.iter
    (fun name () ->
      if Irmod.func_opt m name = None then
        match List.assoc_opt name builtins with
        | Some (ps, r) ->
          Irmod.add_func m
            (Func.declare ~name
               ~params:(List.mapi (fun i t -> (Printf.sprintf "a%d" i, ir_ty t)) ps)
               ~ret:(ir_ty r))
        | None -> ())
    used_builtins;
  m

(** Compile Mini-C source to a verified SSA module (runs mem2reg + DCE). *)
let compile ?(name = "module") (src : string) : Irmod.t =
  let prog = Cparser.parse_program src in
  let m = lower_program ~name prog in
  ignore (Mem2reg.run_module m);
  ignore (Simplify.run_module m);
  List.iter
    (fun f ->
      ignore (Builder.dce_phis f);
      ignore (Builder.dce f))
    (Irmod.defined_functions m);
  Verify.verify_module m;
  m
