lib/minic/ast.ml:
