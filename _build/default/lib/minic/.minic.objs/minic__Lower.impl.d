lib/minic/lower.ml: Array Ast Builder Func Hashtbl Instr Int64 Ir Irmod List Mem2reg Option Parser Printf Simplify Ty Verify
