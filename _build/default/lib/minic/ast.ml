(** Abstract syntax of Mini-C, the C subset used by the benchmark corpus.

    The subset mirrors the C features exercised by the paper's suites
    (MiBench / PARSEC / SPEC kernels): scalars (64-bit [int], [float] =
    double), pointers, fixed-size arrays, function calls (direct and via
    function pointers), all structured control flow, and the usual operator
    zoo.  Structs are modelled with word-indexed arrays, as the IR memory
    model is word-granular. *)

type ty = Tint | Tfloat | Tptr of ty | Tvoid

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"
  | Tptr t -> ty_to_string t ^ "*"

type unop = Neg | Not | Bnot

type expr =
  | Eint of int64
  | Efloat of float
  | Evar of string
  | Eidx of expr * expr            (** a[i] *)
  | Ederef of expr                 (** *p *)
  | Eaddr of expr                  (** &lvalue *)
  | Ecall of string * expr list
  | Ecallptr of expr * expr list   (** call through a function-pointer value *)
  | Efunref of string              (** function name used as a value *)
  | Ebin of string * expr * expr   (** "+", "-", ..., "&&", "||" *)
  | Eun of unop * expr
  | Ecast of ty * expr
  | Eternary of expr * expr * expr

type stmt =
  | Sdecl of ty * string * int option * expr option
      (** type, name, array size, initializer *)
  | Sassign of expr * expr         (** lvalue = expr *)
  | Sopassign of string * expr * expr  (** lvalue op= expr *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sexpr of expr
  | Sblock of stmt list

type gdecl =
  | Gvar of ty * string * int option * expr list option
      (** global scalar or array with optional constant initializer list *)
  | Gfun of ty * string * (ty * string) list * stmt list
  | Gproto of ty * string * (ty * string) list
      (** forward declaration; resolved at link time *)

type program = gdecl list
