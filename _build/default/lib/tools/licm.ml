(** Loop Invariant Code Motion built on NOELLE (§3, Table 3: 170 LoC vs
    LLVM's 2317).

    Uses FR to hoist from innermost loops outward, INV (the PDG-based
    Algorithm 2) to identify hoistable instructions, and LB to perform the
    hoist.  Invariants are hoisted in dependence order (an invariant whose
    operands are themselves hoisted invariants follows them). *)

open Ir
open Noelle

type stats = {
  hoisted : int;
  loops_visited : int;
}

(** Hoist the invariants of one loop; returns how many moved. *)
let hoist_loop (n : Noelle.t) (f : Func.t) (lp : Loop.t) : int =
  let ls = Loop.structure lp in
  let inv = Noelle.invariants n lp in
  Noelle.loop_builder n;
  let candidates = Invariants.invariants inv in
  (* only hoist instructions that are safe to execute when the loop runs
     zero times: pure computations (no loads — the loop guard may protect
     them) *)
  let safe (i : Instr.inst) =
    match i.Instr.op with
    | Instr.Bin ((Instr.Sdiv | Instr.Srem), _, Instr.Cint 0L) -> false
    | Instr.Bin ((Instr.Sdiv | Instr.Srem), _, Instr.Cint _) -> true
    | Instr.Bin ((Instr.Sdiv | Instr.Srem), _, _) -> false
    | Instr.Bin _ | Instr.Fbin _ | Instr.Icmp _ | Instr.Fcmp _ | Instr.Cast _
    | Instr.Gep _ | Instr.Select _ -> true
    | Instr.Load p ->
      (* safe to speculate only when the address is a global (always
         mapped), so a zero-trip loop cannot introduce a trap *)
      (match Alias.base_of f p with Alias.Bglobal _ -> true | _ -> false)
    | Instr.Call (callee, _) -> Alias.is_pure_builtin callee
    | _ -> false
  in
  (* hoist in dependence order: an invariant may only move once every
     in-loop operand has moved out before it; chains broken by an unsafe
     member (e.g. an unhoistable load) stay put entirely *)
  let moved = ref 0 in
  let hoisted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let operands_out (i : Instr.inst) =
    List.for_all
      (function
        | Instr.Reg r -> (
          match Func.inst_opt f r with
          | Some d when Loopstructure.contains_inst ls d -> Hashtbl.mem hoisted r
          | _ -> true)
        | _ -> true)
      (Instr.operands i.Instr.op)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i : Instr.inst) ->
        if
          (not (Hashtbl.mem hoisted i.Instr.id))
          && safe i
          && Loopstructure.contains_inst ls i
          && operands_out i
        then begin
          Loopbuilder.hoist f ls.Loopstructure.raw i.Instr.id;
          Hashtbl.replace hoisted i.Instr.id ();
          incr moved;
          changed := true
        end)
      candidates
  done;
  !moved

(** Run LICM over every function: innermost loops first (FR postorder). *)
let run (n : Noelle.t) (m : Irmod.t) : stats =
  Noelle.set_tool n "LICM";
  let hoisted = ref 0 and visited = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      let forest = Noelle.loop_forest n f in
      let order =
        List.map (fun nd -> nd.Forest.value) (Forest.nodes_postorder forest)
      in
      List.iter
        (fun (raw : Loopnest.loop) ->
          incr visited;
          (* re-derive the Loop for the (possibly already mutated) function *)
          let lp =
            List.find_opt
              (fun lp ->
                (Loop.structure lp).Loopstructure.header = raw.Loopnest.header)
              (Noelle.loops n f)
          in
          match lp with
          | Some lp ->
            let c = hoist_loop n f lp in
            if c > 0 then begin
              hoisted := !hoisted + c;
              Noelle.invalidate n
            end
          | None -> ())
        order)
    (Irmod.defined_functions m);
  { hoisted = !hoisted; loops_visited = !visited }
