(** Perspective (PERS, §3, [15]) — speculative parallelization that
    minimizes speculation and privatization costs.

    The paper ported the original Perspective onto NOELLE's PDG and
    aSCCDAG.  This reproduction keeps that structure: the planner consumes
    the same loop dependence graph DOALL sees, but additionally consults a
    memory-dependence {e profile} distinguishing apparent dependences
    (may-alias edges the static analysis cannot disprove) from actual ones
    (conflicts that really occur).  Only the apparent-but-never-actual
    loop-carried memory edges blocking parallelization are speculated
    away — the "minimum speculation" selection — and reductions are the
    only privatized state.

    Substitution note (DESIGN.md): the original validates speculation with
    process-based checkpointing; here the profile is exact for the profiled
    input (the interpreter observes every access), and the test-suite
    re-validates by comparing parallel and sequential program outputs. *)

open Ir
open Noelle

type stats = {
  loop_id : string;
  speculated_edges : int;
  privatized : int;            (** reductions privatized by DOALL's planner *)
  cloned_objects : string list;
      (** globals privatized per task (memory-object cloning) *)
  ncores : int;
}

(* ------------------------------------------------------------------ *)
(* Memory-dependence profiling (apparent vs actual, §2.2 PDG attrs)    *)
(* ------------------------------------------------------------------ *)

(* per-loop dynamic profile *)
type lprof = {
  mutable active : bool;
  mutable iter : int;
  mutable ran : bool;
  (* addr -> (last access iter, last was write, last write iter) *)
  tbl : (int, int * bool * int option) Hashtbl.t;
  conflict_bases : (string, unit) Hashtbl.t;
      (* objects with an observed cross-iteration conflict ("?" = unknown) *)
  priv_bad : (string, unit) Hashtbl.t;
      (* objects read before a same-iteration write, or read after the loop:
         not privatizable *)
}

(** Run the program once, tracking for every loop (a) which objects carry
    {e actual} cross-iteration conflicts and (b) which of those are
    privatizable (every in-loop read follows a same-iteration write, and
    the object is never read again after the loop) — the memory-object
    cloning analysis the paper lists as future work (§4.4, crc).  Embeds
    "memconf.<fn>.<label>" and "mempriv.<fn>.<label>" metadata. *)
let profile_conflicts ?(entry = "main") ?(args = []) ?fuel (m : Irmod.t) =
  (* static loop maps per function *)
  let nests = Hashtbl.create 8 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace nests f.Func.fname (f, Loopnest.compute f))
    (Irmod.defined_functions m);
  let state : (string * int, lprof) Hashtbl.t = Hashtbl.create 16 in
  let loop_state fn (l : Loopnest.loop) =
    let key = (fn, l.Loopnest.header) in
    match Hashtbl.find_opt state key with
    | Some s -> s
    | None ->
      let s =
        { active = false; iter = 0; ran = false; tbl = Hashtbl.create 64;
          conflict_bases = Hashtbl.create 4; priv_bad = Hashtbl.create 4 }
      in
      Hashtbl.replace state key s;
      s
  in
  (* resolve an address to the global that contains it, if any *)
  let globals = ref [] in
  let base_name addr =
    List.find_map
      (fun (b, sz, name) -> if addr >= b && addr < b + sz then Some name else None)
      !globals
  in
  let configure (st : Interp.state) =
    Hashtbl.iter
      (fun gname base ->
        match Irmod.global_opt m gname with
        | Some g -> globals := (base, g.Irmod.size, gname) :: !globals
        | None -> ())
      st.Interp.global_addr;
    st.Interp.hooks.Interp.on_block <-
      Some
        (fun f bid ->
          match Hashtbl.find_opt nests f.Func.fname with
          | None -> ()
          | Some (_, nest) ->
            List.iter
              (fun (l : Loopnest.loop) ->
                let s = loop_state f.Func.fname l in
                if Loopnest.contains l bid then begin
                  if not s.active then begin
                    s.active <- true;
                    s.ran <- true;
                    s.iter <- 0;
                    Hashtbl.reset s.tbl
                  end
                  else if bid = l.Loopnest.header then s.iter <- s.iter + 1
                end
                else if s.active then s.active <- false)
              nest.Loopnest.loops);
    st.Interp.hooks.Interp.on_mem <-
      Some
        (fun f _i ~addr ~write ->
          let g = base_name addr in
          (* post-loop reads poison privatizability of ran, inactive loops *)
          if not write then
            Option.iter
              (fun gname ->
                Hashtbl.iter
                  (fun _ (s : lprof) ->
                    if s.ran && not s.active then
                      Hashtbl.replace s.priv_bad gname ())
                  state)
              g;
          match Hashtbl.find_opt nests f.Func.fname with
          | None -> ()
          | Some (_, nest) ->
            List.iter
              (fun (l : Loopnest.loop) ->
                let s = loop_state f.Func.fname l in
                if s.active then begin
                  let obj = Option.value g ~default:"?" in
                  (match Hashtbl.find_opt s.tbl addr with
                  | Some (last_iter, last_was_write, last_write) ->
                    if last_iter <> s.iter && (write || last_was_write) then
                      Hashtbl.replace s.conflict_bases obj ();
                    if (not write) && last_write <> Some s.iter then
                      Hashtbl.replace s.priv_bad obj ()
                  | None ->
                    if not write then Hashtbl.replace s.priv_bad obj ());
                  let last_write =
                    if write then Some s.iter
                    else
                      match Hashtbl.find_opt s.tbl addr with
                      | Some (_, _, lw) -> lw
                      | None -> None
                  in
                  Hashtbl.replace s.tbl addr (s.iter, write, last_write)
                end)
              nest.Loopnest.loops)
  in
  ignore (Interp.run_state ~entry ~args ?fuel ~configure m);
  (* embed results *)
  Hashtbl.iter
    (fun (fn, header) (s : lprof) ->
      match Irmod.func_opt m fn with
      | Some f when Hashtbl.mem f.Func.blks header ->
        let lbl = (Func.block f header).Func.label in
        let conflicts =
          Hashtbl.fold (fun k () acc -> k :: acc) s.conflict_bases []
          |> List.sort compare
        in
        let privatizable =
          List.filter
            (fun o -> o <> "?" && not (Hashtbl.mem s.priv_bad o))
            conflicts
        in
        Meta.set m.Irmod.meta
          (Printf.sprintf "memconf.%s.%s" fn lbl)
          (String.concat "," conflicts);
        Meta.set m.Irmod.meta
          (Printf.sprintf "mempriv.%s.%s" fn lbl)
          (String.concat "," privatizable)
      | _ -> ())
    state

let get_list (m : Irmod.t) prefix (ls : Loopstructure.t) =
  let lbl = (Func.block ls.Loopstructure.f ls.Loopstructure.header).Func.label in
  match
    Meta.get m.Irmod.meta
      (Printf.sprintf "%s.%s.%s" prefix ls.Loopstructure.f.Func.fname lbl)
  with
  | Some "" -> Some []
  | Some s -> Some (String.split_on_char ',' s)
  | None -> None

(** Objects with observed cross-iteration conflicts in this loop. *)
let loop_conflicts m ls = get_list m "memconf" ls

(** Conflicting objects that the profile proves privatizable. *)
let loop_privatizable m ls =
  Option.value (get_list m "mempriv" ls) ~default:[]

(** No actual conflicts at all (the pure speculation case). *)
let loop_is_clean (m : Irmod.t) (ls : Loopstructure.t) =
  loop_conflicts m ls = Some []

(* ------------------------------------------------------------------ *)
(* Planning: drop only the apparent loop-carried memory edges           *)
(* ------------------------------------------------------------------ *)

let speculative_plan (n : Noelle.t) (m : Irmod.t) (f : Func.t) (lp : Loop.t) :
    (Doall.plan * int * string list, string) result =
  match Parutil.candidate_of n f lp with
  | Error e -> Error e
  | Ok c ->
    let ls = Loop.structure lp in
    (match loop_conflicts m ls with
    | None -> Error "no memory profile for this loop (run profile_conflicts)"
    | Some conflicts ->
      let privatizable = loop_privatizable m ls in
      let blocking =
        List.filter (fun o -> not (List.mem o privatizable)) conflicts
      in
      if blocking <> [] then
        Error
          (Printf.sprintf
             "actual cross-iteration conflicts on non-privatizable objects (%s)"
             (String.concat " " blocking))
      else begin
        let ldg = Loop.dep_graph lp in
        (* drop blocking carried may edges: edges on privatizable objects
           are privatized (the object gets cloned per task); the rest are
           speculated (the profile saw no actual conflict) *)
        let speculated = ref 0 in
        let cloned : (string, unit) Hashtbl.t = Hashtbl.create 4 in
        let edge_object (e : Depgraph.edge) =
          let base_of_inst id =
            match Func.inst_opt f id with
            | Some i -> (
              match Alias.pointer_operand i with
              | Some p -> (
                match Alias.base_of f p with
                | Alias.Bglobal g -> Some g
                | _ -> None)
              | None -> None)
            | None -> None
          in
          match (base_of_inst e.Depgraph.esrc, base_of_inst e.Depgraph.edst) with
          | Some a, Some b when String.equal a b -> Some a
          | _ -> None
        in
        (* two regimes:
           - pure speculation (no actual conflicts anywhere): every carried
             may edge can go, calls included;
           - privatization (conflicts exist, all on privatizable objects):
             only edges attributed to a specific object may go — attributed
             to a privatizable object = privatize, to a conflict-free
             object = speculate; unattributable edges (calls, unknown
             bases) must stay, so a callee sneaking accesses to a cloned
             object keeps the loop sequential rather than miscompiling *)
        let pure_speculation = conflicts = [] in
        Depgraph.filter_edges ldg.Pdg.ldg ~keep_edge:(fun e ->
            match e.Depgraph.kind with
            | Depgraph.Memory _ when e.Depgraph.loop_carried && not e.Depgraph.must
              -> (
              match edge_object e with
              | Some g when List.mem g privatizable ->
                Hashtbl.replace cloned g ();
                false
              | Some _ ->
                (* a named object with no observed conflict *)
                incr speculated;
                false
              | None ->
                if pure_speculation then begin
                  incr speculated;
                  false
                end
                else true)
            | _ -> true);
        let dag = Sccdag.build ldg in
        let ascc = Ascc.build ls dag in
        let c = { c with Parutil.ascc } in
        let cloned = Hashtbl.fold (fun k () acc -> k :: acc) cloned [] in
        if !speculated = 0 && cloned = [] then Error "nothing to speculate (use DOALL)"
        else
          match Doall.plan_of c with
          | Error e -> Error ("even after speculation: " ^ e)
          | Ok plan ->
            Ok ({ plan with Doall.privatized = List.sort compare cloned },
                !speculated, List.sort compare cloned)
      end)

(** Run Perspective over hot loops that plain DOALL rejected. *)
let run (n : Noelle.t) (m : Irmod.t) ?(ncores = 12) ?(min_hotness = 0.05)
    ?(min_work = 20000.0) () : (string * (stats, string) result) list =
  Noelle.set_tool n "PERS";
  let results = ref [] in
  let attempted : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (f : Func.t) ->
        if not (String.contains f.Func.fname '.') then begin
          let eligible =
            List.filter
              (fun lp ->
                (not (Hashtbl.mem attempted (Loop.id lp)))
                && Parutil.profitable m (Loop.structure lp) ~min_hotness ~min_work)
              (Noelle.loops n f)
            |> List.sort
                 (fun a b ->
                   compare
                     (Loop.structure a).Loopstructure.depth
                     (Loop.structure b).Loopstructure.depth)
          in
          let rec try_loops = function
            | [] -> ()
            | lp :: rest -> (
              let id = Loop.id lp in
              Hashtbl.replace attempted id ();
              match speculative_plan n m f lp with
              | Error e ->
                results := (id, Error e) :: !results;
                try_loops rest
              | Ok (plan, dropped, cloned) ->
                let s = Doall.transform n m plan ~ncores in
                results :=
                  (id,
                   Ok
                     {
                       loop_id = s.Doall.loop_id;
                       speculated_edges = dropped;
                       privatized = s.Doall.nreductions;
                       cloned_objects = cloned;
                       ncores;
                     })
                  :: !results;
                progress := true)
          in
          try_loops eligible
        end)
      (Irmod.defined_functions m)
  done;
  List.rev !results
