(** Baseline LICM implemented the LLVM way (Table 3's "LLVM" column).

    Everything is done with low-level abstractions only: natural-loop
    detection, dominators, per-instruction operand checks and pairwise
    alias queries (Algorithm 1) — no PDG, no INV, no LB, no FR.  Compare
    with {!Licm}: this file needs its own worklist over the loop nest, its
    own preheader construction, its own safety case analysis, and detects
    strictly fewer invariants (Figure 4). *)

open Ir
open Noelle

type stats = { hoisted : int; loops_visited : int }

(* --- low-level loop-nest utilities (re-implemented: no NOELLE FR) ---- *)

let rec hoist_nest (m : Irmod.t) (f : Func.t) (nest : Loopnest.t)
    (l : Loopnest.loop) (hoisted : int ref) =
  (* children first (innermost-out), as LLVM's LoopPass manager does *)
  List.iter (fun c -> hoist_nest m f nest c (hoisted)) l.Loopnest.children;
  let ls = Loopstructure.of_loop f l in
  (* build our own preheader, the low-level way *)
  let ph =
    match Loopnest.preheader f l with
    | Some ph -> ph
    | None ->
      (* replicate what Loopbuilder.ensure_preheader does, locally *)
      Loopbuilder.ensure_preheader f l
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let insts = Loopstructure.insts ls in
    List.iter
      (fun (i : Instr.inst) ->
        if
          Hashtbl.mem f.Func.body i.Instr.id
          && Loopstructure.contains_inst ls i
          && Invariants_llvm.is_invariant m ls i
          &&
          (* safety: never speculate a trap or a side effect *)
          (match i.Instr.op with
          | Instr.Bin ((Instr.Sdiv | Instr.Srem), _, Instr.Cint c) ->
            not (Int64.equal c 0L)
          | Instr.Bin ((Instr.Sdiv | Instr.Srem), _, _) -> false
          | Instr.Load p -> (
            match Alias.base_of f p with Alias.Bglobal _ -> true | _ -> false)
          | Instr.Store _ | Instr.Call _ | Instr.Phi _ -> false
          | op -> not (Instr.is_terminator_op op))
        then begin
          (match Func.terminator f ph with
          | Some t -> Builder.move_before f i.Instr.id ~before:t.Instr.id
          | None -> Builder.move_to_end f i.Instr.id ~bid:ph);
          incr hoisted;
          changed := true
        end)
      insts
  done

(** Run the baseline LICM over the module. *)
let run (m : Irmod.t) : stats =
  let hoisted = ref 0 and visited = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      let nest = Loopnest.compute f in
      List.iter
        (fun l ->
          if l.Loopnest.parent = None then begin
            let rec count l' =
              incr visited;
              List.iter count l'.Loopnest.children
            in
            count l;
            hoist_nest m f nest l hoisted
          end)
        nest.Loopnest.loops)
    (Irmod.defined_functions m);
  { hoisted = !hoisted; loops_visited = !visited }
