(** Compiler-based timing (COOS, §3, [31]).

    Co-designed with the OS to replace hardware timer interrupts: the
    compiler injects calls to an OS callback routine so that no more than
    a budget of [k] dynamic instructions ever executes between two
    callbacks.  Per the paper it uses DFE (+ PRO) for its specialized
    data-flow analysis of instruction distances, L / FR / LB to handle
    potentially-infinite loops, and CG to improve the accuracy of the
    interprocedural timing analysis. *)

open Ir
open Noelle

type stats = {
  callbacks_inserted : int;
  functions_instrumented : int;
}

let declare_runtime (m : Irmod.t) =
  if Irmod.func_opt m "os_callback" = None then
    Irmod.add_func m (Func.declare ~name:"os_callback" ~params:[] ~ret:Ty.I64)

(** Worst-case straight-line gap of a function, treating calls to defined
    functions via the call-graph summary ([None] = the callee guarantees a
    callback on every path, resetting the distance). *)
let rec fn_gap (cg : Callgraph.t) (memo : (string, int) Hashtbl.t)
    (visiting : string list) (m : Irmod.t) fname : int =
  match Hashtbl.find_opt memo fname with
  | Some g -> g
  | None ->
    if List.mem fname visiting then 1_000_000  (* recursive: unbounded *)
    else begin
      let g =
        match Irmod.func_opt m fname with
        | Some f when not f.Func.is_declaration ->
          (* sum of block sizes along the worst acyclic path, loops count
             as unbounded unless they contain a callback (handled by the
             instrumentation pass before summaries are consulted) *)
          let nest = Loopnest.compute f in
          if nest.Loopnest.loops <> [] then 1_000_000
          else
            Func.fold_insts
              (fun acc i ->
                acc + 1
                +
                match i.Instr.op with
                | Instr.Call (Instr.Glob g, _) when g <> "os_callback" ->
                  fn_gap cg memo (fname :: visiting) m g
                | _ -> 0)
              0 f
        | _ -> 1 (* builtins are short *)
      in
      Hashtbl.replace memo fname g;
      g
    end

let run (n : Noelle.t) (m : Irmod.t) ?(budget = 500) () : stats =
  Noelle.set_tool n "COOS";
  Noelle.dfe n;
  Noelle.profiler n;
  Noelle.loop_builder n;
  declare_runtime m;
  let cg = Noelle.callgraph n in
  let inserted = ref 0 and funcs = ref 0 in
  let memo = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      if String.contains f.Func.fname '.' then ()
      else begin
        let before = !inserted in
        (* 1. potentially-unbounded loops get a callback in the body
           (innermost first via FR) unless a constant trip bound keeps the
           whole loop under budget *)
        let forest = Noelle.loop_forest n f in
        List.iter
          (fun nd ->
            let raw = nd.Forest.value in
            let lp =
              List.find_opt
                (fun lp ->
                  (Loop.structure lp).Loopstructure.header = raw.Loopnest.header)
                (Noelle.loops n f)
            in
            match lp with
            | None -> ()
            | Some lp ->
              let ls = Loop.structure lp in
              let body_size = Loopstructure.size ls in
              let bounded =
                match Indvars.governing_iv (Noelle.induction_variables n lp) with
                | Some iv -> (
                  match Indvars.const_trip_count iv with
                  | Some t -> Int64.to_int t * body_size <= budget
                  | None -> false)
                | None -> false
              in
              let already =
                List.exists
                  (fun (i : Instr.inst) ->
                    match i.Instr.op with
                    | Instr.Call (Instr.Glob "os_callback", _) -> true
                    | _ -> false)
                  (Loopstructure.insts ls)
              in
              if (not bounded) && not already then begin
                (* place in the header so every iteration passes it *)
                let hdr = ls.Loopstructure.header in
                let first = List.hd (Func.block f hdr).Func.insts in
                let rec after_phis id rest =
                  match (Func.inst f id).Instr.op with
                  | Instr.Phi _ -> (
                    match rest with
                    | x :: r -> after_phis x r
                    | [] -> id)
                  | _ -> id
                in
                let anchor =
                  match (Func.block f hdr).Func.insts with
                  | x :: rest -> after_phis x rest
                  | [] -> first
                in
                ignore
                  (Builder.insert_before f ~before:anchor
                     (Instr.Call (Instr.Glob "os_callback", []))
                     Ty.I64);
                incr inserted
              end)
          (Forest.nodes_postorder forest);
        (* 2. straight-line stretches: a forward scan per block inserting a
           callback whenever the accumulated distance exceeds the budget;
           call sites account for callee gaps via the CG summary *)
        Func.iter_blocks
          (fun b ->
            let dist = ref 0 in
            List.iter
              (fun id ->
                if Hashtbl.mem f.Func.body id then begin
                  let i = Func.inst f id in
                  let cost =
                    1
                    +
                    match i.Instr.op with
                    | Instr.Call (Instr.Glob "os_callback", _) ->
                      dist := -1;
                      0
                    | Instr.Call (Instr.Glob g, _) -> fn_gap cg memo [] m g
                    | _ -> 0
                  in
                  if !dist >= 0 then begin
                    dist := !dist + cost;
                    if !dist > budget && not (Instr.is_terminator i) then begin
                      ignore
                        (Builder.insert_before f ~before:id
                           (Instr.Call (Instr.Glob "os_callback", []))
                           Ty.I64);
                      incr inserted;
                      dist := cost
                    end
                  end
                  else dist := 0
                end)
              b.Func.insts)
          f;
        if !inserted > before then incr funcs
      end)
    (Irmod.defined_functions m);
  Noelle.invalidate n;
  { callbacks_inserted = !inserted; functions_instrumented = !funcs }
