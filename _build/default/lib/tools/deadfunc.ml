(** DeadFunctionElimination (§3, §4.5; Table 3: 61 LoC).

    Reduces binary size by removing functions that can never execute.
    It is only a handful of lines because NOELLE's call graph is
    {e complete} (indirect calls resolved, §2.2 "CG"): the absence of an
    edge proves the absence of a call, and ISL's islands identify whole
    disconnected components.  The binary-size metric is the module's total
    instruction count, the IR stand-in for §4.5's 6.3% reduction. *)

open Ir
open Noelle

type stats = {
  removed : string list;
  insts_before : int;
  insts_after : int;
}

let run (n : Noelle.t) (m : Irmod.t) ?(roots = [ "main" ]) () : stats =
  Noelle.set_tool n "DEAD";
  let cg = Noelle.callgraph n in
  Noelle.islands n;
  ignore (Callgraph.islands cg);
  let insts_before = Irmod.total_insts m in
  let live = Callgraph.reachable cg ~roots in
  let removed =
    List.filter_map
      (fun (f : Func.t) ->
        if Hashtbl.mem live f.Func.fname || List.mem f.Func.fname roots then None
        else Some f.Func.fname)
      (Irmod.defined_functions m)
  in
  List.iter (Irmod.remove_func m) removed;
  Noelle.invalidate n;
  { removed; insts_before; insts_after = Irmod.total_insts m }

(** Percent binary-size reduction achieved. *)
let reduction (s : stats) =
  if s.insts_before = 0 then 0.0
  else
    100.0 *. float_of_int (s.insts_before - s.insts_after) /. float_of_int s.insts_before
