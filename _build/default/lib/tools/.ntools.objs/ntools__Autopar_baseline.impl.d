lib/tools/autopar_baseline.ml: Ascc Depgraph Func Indvars_llvm Instr Ir Irmod List Loop Loopstructure Noelle Pdg Sccdag String
