lib/tools/carat.ml: Alias Builder Dfe Func Hashtbl Indvars Instr Int64 Ir Irmod List Loop Loopbuilder Loopstructure Noelle Option Scev Ty
