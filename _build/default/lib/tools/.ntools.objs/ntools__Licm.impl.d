lib/tools/licm.ml: Alias Forest Func Hashtbl Instr Invariants Ir Irmod List Loop Loopbuilder Loopnest Loopstructure Noelle
