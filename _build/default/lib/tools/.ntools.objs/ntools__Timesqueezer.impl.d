lib/tools/timesqueezer.ml: Func Indvars Instr Int64 Ir Irmod Islands List Noelle Pdg Profiler Scheduler
