lib/tools/deadfunc.ml: Callgraph Func Hashtbl Ir Irmod List Noelle
