lib/tools/prvjeeves.ml: Depgraph Func Instr Ir Irmod List Loop Loopstructure Noelle Pdg Profiler String Ty
