lib/tools/coos.ml: Builder Callgraph Forest Func Hashtbl Indvars Instr Int64 Ir Irmod List Loop Loopnest Loopstructure Noelle String Ty
