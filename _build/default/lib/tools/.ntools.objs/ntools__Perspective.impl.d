lib/tools/perspective.ml: Alias Ascc Depgraph Doall Func Hashtbl Interp Ir Irmod List Loop Loopnest Loopstructure Meta Noelle Option Parutil Pdg Printf Sccdag String
