lib/tools/toolrt.ml: Buffer Hashtbl Int64 Interp Ir Irmod List
