lib/tools/dswp.ml: Ascc Builder Depgraph Env Float Func Hashtbl Indvars Instr Int64 Ir Irmod List Loop Loopbuilder Loopstructure Noelle Parutil Pdg Printf Profiler Sccdag String Task Ty
