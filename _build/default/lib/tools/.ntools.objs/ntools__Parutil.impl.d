lib/tools/parutil.ml: Array Ascc Builder Cfg Env Func Indvars Instr Int64 Ir Irmod List Loop Loopstructure Noelle Option Printf Profiler Ty
