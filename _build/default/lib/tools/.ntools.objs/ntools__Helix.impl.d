lib/tools/helix.ml: Ascc Builder Env Func Hashtbl Indvars Instr Int64 Ir Irmod Ivstepper List Loop Loopbuilder Loopstructure Noelle Parutil Printf Reduction Sccdag Scev String Task Ty
