lib/tools/licm_llvm.ml: Alias Builder Func Hashtbl Instr Int64 Invariants_llvm Ir Irmod List Loopbuilder Loopnest Loopstructure Noelle
