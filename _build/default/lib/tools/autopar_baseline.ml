(** Baseline auto-parallelizer: the gcc/icc stand-in for Figure 5.

    Production compilers' auto-parallelization fails on these suites for
    two reasons the paper measures separately: conservative dependence
    analysis (Figure 3) and do-while-only induction-variable recognition
    (§4.3, 11 vs 385 governing IVs).  This baseline reproduces exactly
    those two limitations: it only considers loops whose governing IV the
    {!Noelle.Indvars_llvm} detector finds (do-while shape with a constant
    latch test), and it must prove independence with the baseline alias
    stack alone; reductions and calls disqualify a loop, as they do under
    [-ftree-parallelize-loops]-style legality checks.

    The result, on this corpus as on the paper's, is that essentially no
    loop qualifies — the flat gcc/icc bars of Figure 5. *)

open Ir
open Noelle

type verdict = {
  loop_id : string;
  would_parallelize : bool;
  reason : string;
}

let analyze_loop (nb : Noelle.t) (m : Irmod.t) (_f : Func.t) (lp : Loop.t) : verdict =
  let ls = Loop.structure lp in
  let id = Loop.id lp in
  let fail reason = { loop_id = id; would_parallelize = false; reason } in
  ignore m;
  (* 1. induction variable: LLVM-style detection only *)
  if Indvars_llvm.governing_count ls = 0 then
    fail "no governing induction variable (loop is not do-while-shaped)"
  else if
    (* 2. no calls at all *)
    List.exists
      (fun (i : Instr.inst) ->
        match i.Instr.op with Instr.Call _ -> true | _ -> false)
      (Loopstructure.insts ls)
  then fail "loop contains calls"
  else begin
    (* 3. independence under the baseline alias stack *)
    let ldg = Loop.dep_graph lp in
    let carried_mem =
      List.exists
        (fun (e : Depgraph.edge) ->
          match e.Depgraph.kind with
          | Depgraph.Memory _ -> e.Depgraph.loop_carried
          | _ -> false)
        (Depgraph.edges ldg.Pdg.ldg)
    in
    if carried_mem then fail "possible loop-carried memory dependence"
    else begin
      (* 4. no recurrences other than the IV (no reduction support) *)
      let dag = Sccdag.build ldg in
      let ascc = Ascc.build ls dag in
      let blocking =
        List.exists
          (fun (nd : Ascc.node) ->
            match nd.Ascc.attr with
            | Ascc.Sequential | Ascc.Reducible _ -> true
            | _ -> false)
          ascc.Ascc.nodes
      in
      ignore nb;
      if blocking then fail "loop carries a recurrence (no reduction support)"
      else { loop_id = id; would_parallelize = true; reason = "parallelizable" }
    end
  end

(** Analyze every loop of the module with baseline-compiler legality;
    returns the verdicts.  (Analysis only: when nothing qualifies, the
    baseline's speedup is 1.0 by construction.) *)
let run (m : Irmod.t) : verdict list =
  (* a separate manager restricted to the baseline alias stack *)
  let nb = Noelle.create ~use_noelle_aa:false m in
  Noelle.set_tool nb "AUTOPAR-BASELINE";
  List.concat_map
    (fun (f : Func.t) ->
      if String.contains f.Func.fname '.' then []
      else List.map (analyze_loop nb m f) (Noelle.loops nb f))
    (Irmod.defined_functions m)

let parallelized (vs : verdict list) =
  List.length (List.filter (fun v -> v.would_parallelize) vs)
