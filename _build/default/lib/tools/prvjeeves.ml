(** PRVJeeves — pseudo-random value generator selection (§3, [38]).

    Selects, per use site, the cheapest PRVG whose statistical quality
    suffices for the randomized program (Monte Carlo simulations and
    friends).  Per the paper it uses the PDG / CG / DFE to identify the
    allocations and uses of PRVGs, PRO to prune the design space (cold
    sites are left alone), L / LB / INV / IV to recognize uses inside hot
    loops, and SCD to place the selected generator's calls.

    Design space (implemented by {!Toolrt}): the default [rand] models a
    high-quality generator (Mersenne-Twister class, 40 extra cycles per
    call); [prv_xorshift] (8 cycles) and [prv_lcg] (2 cycles) are cheaper
    but weaker.  Quality demand is inferred from the PDG: a site whose
    value is immediately reduced to a small range (mask/modulo by a small
    constant) tolerates a weak generator; a site feeding floating-point
    conversion keeps a mid-quality one; anything else stays untouched. *)

open Ir
open Noelle

type choice = Keep | Xorshift | Lcg

type site = {
  fname : string;
  inst_id : int;
  hot : bool;
  chosen : choice;
}

type stats = {
  sites : site list;
  changed : int;
}

let declare_runtime (m : Irmod.t) =
  List.iter
    (fun name ->
      if Irmod.func_opt m name = None then
        Irmod.add_func m (Func.declare ~name ~params:[] ~ret:Ty.I64))
    [ "prv_xorshift"; "prv_lcg" ]

(** Infer the quality demand of a rand call from its users (via the PDG):
    [`Mask k] when every user masks/mods the value into [0,k); [`Float]
    when converted to float; [`Full] otherwise. *)
let demand (pdg : Pdg.t) (f : Func.t) (call : Instr.inst) =
  let users =
    List.filter_map
      (fun (e : Depgraph.edge) ->
        match e.Depgraph.kind with
        | Depgraph.Register _ -> Func.inst_opt f e.Depgraph.edst
        | _ -> None)
      (Depgraph.succs pdg.Pdg.fdg call.Instr.id)
  in
  if users = [] then `Mask 0L
  else if
    List.for_all
      (fun (u : Instr.inst) ->
        match u.Instr.op with
        | Instr.Bin (Instr.And, _, Instr.Cint k) when k < 65536L -> true
        | Instr.Bin (Instr.Srem, _, Instr.Cint k) when k < 65536L -> true
        | _ -> false)
      users
  then `Mask 65536L
  else if
    List.for_all
      (fun (u : Instr.inst) ->
        match u.Instr.op with
        | Instr.Cast (Instr.Sitofp, _) -> true
        | Instr.Bin ((Instr.And | Instr.Srem), _, Instr.Cint _) -> true
        | _ -> false)
      users
  then `Float
  else `Full

let run (n : Noelle.t) (m : Irmod.t) ?(hot_threshold = 0.01) () : stats =
  Noelle.set_tool n "PRVJ";
  Noelle.dfe n;
  Noelle.profiler n;
  Noelle.loop_builder n;
  declare_runtime m;
  ignore (Noelle.callgraph n);
  let sites = ref [] and changed = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      if String.contains f.Func.fname '.' then ()
      else begin
        let pdg = Noelle.pdg n f in
        let loops = Noelle.loops n f in
        (* hot sites: inside a loop whose hotness clears the threshold
           (IV / INV / L recognize the enclosing loop) *)
        let hotness_of (i : Instr.inst) =
          List.exists
            (fun lp ->
              let ls = Loop.structure lp in
              ignore (Noelle.induction_variables n lp);
              ignore (Noelle.invariants n lp);
              Loopstructure.contains_inst ls i
              && ((not (Profiler.available m))
                 || Profiler.loop_hotness m ls >= hot_threshold))
            loops
        in
        Func.iter_insts
          (fun i ->
            match i.Instr.op with
            | Instr.Call (Instr.Glob "rand", []) ->
              let hot = hotness_of i in
              let chosen =
                if not hot then Keep (* PRO prunes the design space *)
                else
                  match demand pdg f i with
                  | `Mask _ -> Lcg
                  | `Float -> Xorshift
                  | `Full -> Keep
              in
              (match chosen with
              | Keep -> ()
              | Xorshift ->
                i.Instr.op <- Instr.Call (Instr.Glob "prv_xorshift", []);
                incr changed
              | Lcg ->
                i.Instr.op <- Instr.Call (Instr.Glob "prv_lcg", []);
                incr changed);
              sites :=
                { fname = f.Func.fname; inst_id = i.Instr.id; hot; chosen } :: !sites
            | _ -> ())
          f
      end)
    (Irmod.defined_functions m);
  Noelle.invalidate n;
  { sites = List.rev !sites; changed = !changed }
