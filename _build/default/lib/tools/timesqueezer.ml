(** Time-Squeezer (TIME, §3, [28, 29]).

    Generates code for timing-speculative micro-architectures, where the
    clock period can be shortened while only some instruction classes
    remain timing-safe.  The compiler decides (i) when to swap compare
    operands (and flip the predicate) so the critical carry chain shortens,
    (ii) how to re-schedule instructions so same-period instructions
    cluster (each period switch costs re-timing cycles), and (iii) where
    the clock-change points land.  Per the paper it uses DFE / L / FR to
    choose clock-change points, SCD to reorder within regions, and
    ISL + PDG to analyze the compare instructions per dependence island.

    The timing model: "fast" instructions run at period 1.0, "slow" at
    1.15; every switch between classes inside a block costs
    [switch_penalty] cycles. *)

open Ir
open Noelle

type klass = Fast | Slow

type stats = {
  cmps_swapped : int;
  switches_before : int;
  switches_after : int;
  islands_analyzed : int;
  est_cycles_before : float;
  est_cycles_after : float;
}

let switch_penalty = 4.0

(** Timing class of an instruction.  Compares against immediates resolve
    early (fast); register-register compares, floating point, and memory
    are slow. *)
let class_of (i : Instr.inst) =
  match i.Instr.op with
  | Instr.Icmp (_, _, Instr.Cint _) -> Fast
  | Instr.Icmp _ -> Slow
  | Instr.Fcmp _ | Instr.Fbin _ -> Slow
  | Instr.Load _ | Instr.Store _ | Instr.Call _ -> Slow
  | Instr.Bin ((Instr.Mul | Instr.Sdiv | Instr.Srem), _, _) -> Slow
  | _ -> Fast

let period = function Fast -> 1.0 | Slow -> 1.15

(** Count class switches along each block's schedule, weighted by the
    block's execution count when a profile is available. *)
let eval (m : Irmod.t) (f : Func.t) =
  let switches = ref 0 and cycles = ref 0.0 in
  Func.iter_blocks
    (fun b ->
      let w =
        if Profiler.available m then
          Int64.to_float (Int64.max 1L (Profiler.block_count m f b.Func.bid))
        else 1.0
      in
      let prev = ref None in
      List.iter
        (fun id ->
          let k = class_of (Func.inst f id) in
          cycles := !cycles +. (w *. period k);
          (match !prev with
          | Some p when p <> k ->
            incr switches;
            cycles := !cycles +. (w *. switch_penalty)
          | _ -> ());
          prev := Some k)
        b.Func.insts)
    f;
  (!switches, !cycles)

let run (n : Noelle.t) (m : Irmod.t) : stats =
  Noelle.set_tool n "TIME";
  Noelle.dfe n;
  Noelle.loop_builder n;
  let swapped = ref 0 and islands = ref 0 in
  let sw_before = ref 0 and sw_after = ref 0 in
  let cy_before = ref 0.0 and cy_after = ref 0.0 in
  List.iter
    (fun (f : Func.t) ->
      ignore (Noelle.loop_forest n f);
      let pdg = Noelle.pdg n f in
      Noelle.islands n;
      islands := !islands + List.length (Islands.of_depgraph pdg.Pdg.fdg);
      let s0, c0 = eval m f in
      sw_before := !sw_before + s0;
      cy_before := !cy_before +. c0;
      (* 1. swap compare operands so the immediate lands on the right *)
      Func.iter_insts
        (fun i ->
          match i.Instr.op with
          | Instr.Icmp (pred, Instr.Cint c, b) ->
            i.Instr.op <- Instr.Icmp (Indvars.swap_pred pred, b, Instr.Cint c);
            incr swapped
          | _ -> ())
        f;
      (* 2. cluster timing classes with the within-block scheduler; the
         dependence constraints can force interleavings that are worse
         than the original order, so keep a block's new schedule only when
         it reduces that block's cost *)
      let block_cost bid =
        let prev = ref None and cost = ref 0.0 in
        List.iter
          (fun id ->
            let k = class_of (Func.inst f id) in
            cost := !cost +. period k;
            (match !prev with
            | Some p when p <> k -> cost := !cost +. switch_penalty
            | _ -> ());
            prev := Some k)
          (Func.block f bid).Func.insts;
        !cost
      in
      let sched = Noelle.scheduler n f in
      List.iter
        (fun bid ->
          let before_order = (Func.block f bid).Func.insts in
          let before_cost = block_cost bid in
          Scheduler.schedule_block sched bid ~priority:(fun i ->
              match class_of i with Fast -> 0 | Slow -> 1);
          if block_cost bid > before_cost then
            (Func.block f bid).Func.insts <- before_order)
        f.Func.blocks;
      let s1, c1 = eval m f in
      sw_after := !sw_after + s1;
      cy_after := !cy_after +. c1)
    (Irmod.defined_functions m);
  Noelle.invalidate n;
  {
    cmps_swapped = !swapped;
    switches_before = !sw_before;
    switches_after = !sw_after;
    islands_analyzed = !islands;
    est_cycles_before = !cy_before;
    est_cycles_after = !cy_after;
  }
