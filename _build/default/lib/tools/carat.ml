(** CARAT — compiler- and runtime-based address translation (§3, [46]).

    Co-designed with the OS to replace virtual memory: the compiler guards
    every memory instruction that cannot be proven valid at compile time,
    calling into the runtime's allocation tracker.  Per the paper, CARAT
    uses the PDG / aSCCDAG / INV to decide what needs guarding, DFE (+ PRO)
    to avoid redundantly guarding the same location, L / LB / IV to merge
    per-iteration guards into a single range guard hoisted before the
    loop, and SCD to place guards.

    The runtime ({!Toolrt}) implements [carat_guard]/[carat_guard_range]
    against the interpreter's allocation table — the same check the real
    CARAT performs against its kernel allocation map. *)

open Ir
open Noelle

type stats = {
  mem_insts : int;
  guards_inserted : int;      (** per-access guards *)
  range_guards : int;         (** per-loop merged guards *)
  proven_safe : int;          (** accesses needing no guard *)
  redundant_skipped : int;    (** skipped thanks to the data-flow analysis *)
}

let declare_runtime (m : Irmod.t) =
  if Irmod.func_opt m "carat_guard" = None then
    Irmod.add_func m
      (Func.declare ~name:"carat_guard" ~params:[ ("p", Ty.Ptr) ] ~ret:Ty.I64);
  if Irmod.func_opt m "carat_guard_range" = None then
    Irmod.add_func m
      (Func.declare ~name:"carat_guard_range"
         ~params:[ ("p", Ty.Ptr); ("len", Ty.I64) ]
         ~ret:Ty.I64)

(** Is the access provably in-bounds at compile time?  Non-escaping
    allocas and globals with known-constant offsets within their size. *)
let provably_safe (m : Irmod.t) (f : Func.t) (p : Instr.value) =
  match Alias.base_of f p with
  | Alias.Balloca _ -> (
    match Alias.const_offset f p with Some _ -> true | None -> false)
  | Alias.Bglobal g -> (
    match (Irmod.global_opt m g, Alias.const_offset f p) with
    | Some gl, Some off -> off >= 0L && off < Int64.of_int gl.Irmod.size
    | _ -> false)
  | _ -> false

let run (n : Noelle.t) (m : Irmod.t) : stats =
  Noelle.set_tool n "CARAT";
  Noelle.dfe n;
  Noelle.profiler n;
  Noelle.loop_builder n;
  Noelle.iv_stepper n;
  declare_runtime m;
  let mem_insts = ref 0 and guards = ref 0 and ranges = ref 0 in
  let safe = ref 0 and redundant = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      let pdg = Noelle.pdg n f in
      let sched = Noelle.scheduler n f in
      ignore sched;
      let loops = Noelle.loops n f in
      (* loop-merged guards: accesses whose address is affine in the
         governing IV of a constant-trip loop get one range guard in the
         preheader *)
      let merged : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun lp ->
          let ls = Loop.structure lp in
          let ivs = Noelle.induction_variables n lp in
          ignore (Noelle.invariants n lp);
          ignore (Noelle.aSCCDAG n lp);
          match Indvars.governing_iv ivs with
          | Some iv -> (
            match Indvars.const_trip_count iv with
            | Some trips when trips > 0L ->
              let raw = ls.Loopstructure.raw in
              List.iter
                (fun (i : Instr.inst) ->
                  match Alias.pointer_operand i with
                  | Some p when not (provably_safe m f p) -> (
                    match
                      Scev.affine_of f raw ~iv_phi:iv.Indvars.phi.Instr.id p
                    with
                    | Some a
                      when (not (Int64.equal a.Scev.scale 0L)) && a.Scev.base <> None ->
                      if not (Hashtbl.mem merged i.Instr.id) then begin
                        (* range = [base+offset, base+offset+scale*(trips-1)] *)
                        let ph = Loopbuilder.ensure_preheader f raw in
                        let base = Option.get a.Scev.base in
                        let lo =
                          if Int64.equal a.Scev.offset 0L then base
                          else
                            Instr.Reg
                              (Builder.add f ph (Instr.Gep (base, Instr.Cint a.Scev.offset)) Ty.Ptr)
                                .Instr.id
                        in
                        let len =
                          Int64.add (Int64.mul (Int64.abs a.Scev.scale) (Int64.sub trips 1L)) 1L
                        in
                        ignore
                          (Builder.add f ph
                             (Instr.Call
                                (Instr.Glob "carat_guard_range", [ lo; Instr.Cint len ]))
                             Ty.I64);
                        Hashtbl.replace merged i.Instr.id ();
                        incr ranges
                      end
                    | _ -> ())
                  | _ -> ())
                (Loopstructure.insts ls)
            | _ -> ())
          | None -> ())
        loops;
      (* redundancy elimination with the DFE: a guard for pointer [p] makes
         every later access through the same address guard-free on all
         paths it dominates.  Facts are the ids of guard-needing accesses;
         the meet is intersection (available-guards, a forward problem). *)
      ignore pdg;
      let candidates =
        Func.fold_insts
          (fun acc i ->
            match Alias.pointer_operand i with
            | Some p ->
              incr mem_insts;
              if provably_safe m f p then begin
                incr safe;
                acc
              end
              else if Hashtbl.mem merged i.Instr.id then acc
              else (i, p) :: acc
            | None -> acc)
          [] f
        |> List.rev
      in
      let cand_tbl = Hashtbl.create 16 in
      List.iter (fun (i, p) -> Hashtbl.replace cand_tbl i.Instr.id p) candidates;
      let universe =
        List.fold_left
          (fun acc (i, _) -> Dfe.IntSet.add i.Instr.id acc)
          Dfe.IntSet.empty candidates
      in
      let frees b =
        List.exists
          (fun id ->
            match (Func.inst f id).Instr.op with
            | Instr.Call (Instr.Glob "free", _) -> true
            | _ -> false)
          (Func.block f b).Func.insts
      in
      let gen b =
        if frees b then Dfe.IntSet.empty
        else
          List.fold_left
            (fun acc id ->
              if Hashtbl.mem cand_tbl id then Dfe.IntSet.add id acc else acc)
            Dfe.IntSet.empty
            (Func.block f b).Func.insts
      in
      let avail =
        Dfe.solve f
          {
            Dfe.direction = Dfe.Forward;
            gen;
            (* a free() invalidates every cached guard *)
            kill = (fun b -> if frees b then universe else Dfe.IntSet.empty);
            boundary = Dfe.IntSet.empty;
            init = universe;
            combine = Dfe.IntSet.inter;
          }
      in
      (* walk each block in order, carrying the available set *)
      Func.iter_blocks
        (fun b ->
          let avail_here =
            ref
              (try Hashtbl.find avail.Dfe.in_ b.Func.bid
               with Not_found -> Dfe.IntSet.empty)
          in
          List.iter
            (fun id ->
              match Hashtbl.find_opt cand_tbl id with
              | None -> ()
              | Some p ->
                let covered =
                  Dfe.IntSet.exists
                    (fun other ->
                      other <> id
                      &&
                      match Hashtbl.find_opt cand_tbl other with
                      | Some q -> Alias.same_address f p q
                      | None -> false)
                    !avail_here
                in
                if covered then incr redundant
                else begin
                  (* SCD places the guard right before the access *)
                  ignore
                    (Builder.insert_before f ~before:id
                       (Instr.Call (Instr.Glob "carat_guard", [ p ]))
                       Ty.I64);
                  incr guards
                end;
                avail_here := Dfe.IntSet.add id !avail_here)
            (List.filter
               (fun id ->
                 (match Func.inst_opt f id with
                 | Some { Instr.op = Instr.Call (Instr.Glob "free", _); _ } ->
                   avail_here := Dfe.IntSet.empty
                 | _ -> ());
                 Hashtbl.mem f.Func.body id)
               b.Func.insts))
        f)
    (Irmod.defined_functions m);
  Noelle.invalidate n;
  {
    mem_insts = !mem_insts;
    guards_inserted = !guards;
    range_guards = !ranges;
    proven_safe = !safe;
    redundant_skipped = !redundant;
  }
