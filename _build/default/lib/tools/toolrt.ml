(** Runtimes of the custom tools, registered on an interpreter state.

    - CARAT: [carat_guard]/[carat_guard_range] validate accesses against
      the interpreter's live-allocation table (the stand-in for CARAT's
      kernel allocation map) and count dynamic guard executions.
    - COOS: [os_callback] tracks the maximum dynamic-instruction gap
      between consecutive callbacks — the property the tool must bound.
    - PRVJeeves: a costed PRVG family.  [rand] is re-registered to model a
      high-quality generator (extra virtual cycles per call);
      [prv_xorshift] and [prv_lcg] are cheaper, weaker generators. *)

open Ir

let rand_cost = 40L
let xorshift_cost = 8L
let lcg_cost = 2L

type stats = {
  mutable guards_executed : int64;
  mutable guard_faults : int64;      (** would-be invalid accesses caught *)
  mutable max_gap : int;             (** worst distance between callbacks *)
  mutable callbacks : int64;
}

let install (st : Interp.state) : stats =
  let s = { guards_executed = 0L; guard_faults = 0L; max_gap = 0; callbacks = 0L } in
  Interp.register_builtin st "carat_guard" (fun st args ->
      match args with
      | [ p ] ->
        s.guards_executed <- Int64.add s.guards_executed 1L;
        let addr = Interp.as_ptr p in
        if not (Interp.addr_is_guarded_valid st addr) then begin
          s.guard_faults <- Int64.add s.guard_faults 1L;
          Interp.trap "CARAT guard fault: address %d is not in a live allocation" addr
        end;
        Interp.VI 0L
      | _ -> Interp.trap "carat_guard: expected 1 argument");
  Interp.register_builtin st "carat_guard_range" (fun st args ->
      match args with
      | [ p; len ] ->
        s.guards_executed <- Int64.add s.guards_executed 1L;
        let lo = Interp.as_ptr p in
        let hi = lo + Int64.to_int (Interp.as_int len) - 1 in
        if not (Interp.addr_is_guarded_valid st lo && Interp.addr_is_guarded_valid st hi)
        then begin
          s.guard_faults <- Int64.add s.guard_faults 1L;
          Interp.trap "CARAT range-guard fault: [%d, %d] not in a live allocation" lo hi
        end;
        Interp.VI 0L
      | _ -> Interp.trap "carat_guard_range: expected 2 arguments");
  let last = ref 0 in
  Interp.register_builtin st "os_callback" (fun st args ->
      match args with
      | [] ->
        let gap = st.Interp.steps - !last in
        if gap > s.max_gap then s.max_gap <- gap;
        last := st.Interp.steps;
        s.callbacks <- Int64.add s.callbacks 1L;
        Interp.VI 0L
      | _ -> Interp.trap "os_callback: expected no arguments");
  (* PRVG family: the default rand becomes the costly high-quality one *)
  let base_rand = Hashtbl.find_opt st.Interp.builtins "rand" in
  (match base_rand with
  | Some f ->
    Interp.register_builtin st "rand" (fun st args ->
        st.Interp.clock <- Int64.add st.Interp.clock rand_cost;
        f st args)
  | None -> ());
  let xs = ref 2463534242L in
  Interp.register_builtin st "prv_xorshift" (fun st args ->
      match args with
      | [] ->
        st.Interp.clock <- Int64.add st.Interp.clock xorshift_cost;
        let x = !xs in
        let x = Int64.logxor x (Int64.shift_left x 13) in
        let x = Int64.logxor x (Int64.shift_right_logical x 7) in
        let x = Int64.logxor x (Int64.shift_left x 17) in
        xs := x;
        Interp.VI (Int64.logand (Int64.shift_right_logical x 16) 0x7fffffffL)
      | _ -> Interp.trap "prv_xorshift: expected no arguments");
  let lc = ref 123456789L in
  Interp.register_builtin st "prv_lcg" (fun st args ->
      match args with
      | [] ->
        st.Interp.clock <- Int64.add st.Interp.clock lcg_cost;
        lc := Int64.add (Int64.mul !lc 1103515245L) 12345L;
        Interp.VI (Int64.logand (Int64.shift_right_logical !lc 16) 0x7fffffffL)
      | _ -> Interp.trap "prv_lcg: expected no arguments");
  s

(** Run a module with the tool runtimes installed; returns (exit, output,
    simulated cycles, tool-runtime stats). *)
let run ?(entry = "main") ?(args = []) ?fuel (m : Irmod.t) =
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let s = install st in
  let v = Interp.call st entry (List.map (fun x -> Interp.VI (Int64.of_int x)) args) in
  (v, Buffer.contents st.Interp.output, st.Interp.clock, s)
