lib/psim/models.ml: Float List
