lib/psim/runtime.ml: Buffer Effect Hashtbl Int64 Interp Ir Irmod List Noelle Queue
