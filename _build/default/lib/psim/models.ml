(** Analytic performance models for the three parallelization strategies.

    The fiber simulator in {!Runtime} measures parallel time by execution;
    these closed-form models predict it from profile numbers alone.  The
    benchmark harness uses them as a cross-check (the ablation bench
    compares model vs simulation) and to reason about crossover points
    (e.g. minimum iterations for DOALL to win, maximum sequential-segment
    fraction for HELIX to scale). *)

type params = {
  cores : int;
  latency : float;        (** core-to-core latency, cycles *)
  spawn : float;          (** per-task spawn cost, cycles *)
  join : float;           (** join barrier cost, cycles *)
}

let default_params =
  { cores = 12; latency = 60.0; spawn = 400.0; join = 400.0 }

(** DOALL over [iters] iterations of [work] cycles each: iterations are
    split cyclically, no cross-core communication. *)
let doall_time (p : params) ~iters ~work =
  let per_core = ceil (iters /. float_of_int p.cores) in
  (per_core *. work) +. (p.spawn *. float_of_int p.cores) +. p.join

(** HELIX: each iteration has a sequential segment of [seq] cycles that
    must execute in iteration order across cores (paying a signal latency
    per hand-off) while the remaining [work - seq] cycles overlap. *)
let helix_time (p : params) ~iters ~work ~seq =
  let c = float_of_int p.cores in
  let par = work -. seq in
  (* the sequential chain serializes: one segment + hand-off per iteration;
     the parallel part is limited by cores *)
  let chain = iters *. (seq +. p.latency) in
  let overlap = iters *. par /. c in
  Float.max chain overlap +. (p.spawn *. c) +. p.join

(** DSWP with stage weights [stages] (cycles/iteration each): throughput
    is bounded by the heaviest stage; each cross-stage value pays queue
    latency once (pipelined, so it adds to the fill time not the steady
    state). *)
let dswp_time (p : params) ~iters ~stages =
  match stages with
  | [] -> p.join
  | _ ->
    let bottleneck = List.fold_left Float.max 0.0 stages in
    let fill =
      float_of_int (List.length stages - 1) *. (p.latency +. bottleneck)
    in
    (iters *. bottleneck) +. fill
    +. (p.spawn *. float_of_int (List.length stages))
    +. p.join

(** Speedup of a technique time vs the sequential time [iters * work]. *)
let speedup ~seq_time ~par_time = if par_time <= 0.0 then 1.0 else seq_time /. par_time

(** Minimum iteration count for DOALL to be profitable (speedup > 1). *)
let doall_min_iters (p : params) ~work =
  let overhead = (p.spawn *. float_of_int p.cores) +. p.join in
  let c = float_of_int p.cores in
  (* iters * work > iters * work / c + overhead *)
  overhead /. (work -. (work /. c)) |> ceil
