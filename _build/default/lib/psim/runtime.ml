(** Parallel-execution runtime and multicore simulator.

    This is the reproduction's stand-in for the paper's 12-core Xeon: it
    executes the task functions emitted by the parallelizing custom tools
    (DOALL / HELIX / DSWP) as deterministic fibers (OCaml effect handlers)
    over the IR interpreter, while accounting {e virtual time}:

    - every executed IR instruction costs one cycle on its virtual core;
    - queue pushes and signal sets stamp their data with the producer's
      clock plus the core-to-core latency from {!Noelle.Arch};
    - queue pops and signal waits advance the consumer's clock to the
      stamp (communication/stall cost);
    - task spawn and join pay fixed thread-pool overheads.

    The result is a discrete-event simulation whose sequential semantics
    are exact (the tests compare program outputs against the unparallelized
    original) and whose timing reproduces the cost trade-offs each
    technique makes, which is what Figure 5 measures. *)

open Ir

type _ Effect.t += Block : (unit -> bool) -> unit Effect.t

(** Cost model (cycles). *)
let spawn_cost = 400L
let join_cost = 400L

type task = {
  tid : int;
  fname : string;
  targs : Interp.v list;
  mutable clock : int64;
}

type t = {
  st : Interp.state;
  mutable latency : int64;           (** core-to-core latency *)
  mutable pending : task list;       (** submitted, not yet run *)
  queues : (int, (int64 * Interp.v) Queue.t) Hashtbl.t;
  sigs : (int, int64 ref * int64 ref) Hashtbl.t;  (** value, availability stamp *)
  mutable next_handle : int;
  mutable next_tid : int;
  (* statistics *)
  mutable sections : int;            (** parallel sections executed *)
  mutable par_cycles : int64;        (** cycles spent inside parallel sections *)
  mutable tasks_executed : int;
}

let stats_sections (t : t) = t.sections
let stats_par_cycles (t : t) = t.par_cycles

(* ------------------------------------------------------------------ *)
(* Fiber scheduler                                                     *)
(* ------------------------------------------------------------------ *)

type status =
  | Done
  | Blocked of (unit -> bool) * (unit, status) Effect.Deep.continuation

let run_tasks (r : t) (tasks : task list) =
  let caller_clock = r.st.Interp.clock in
  (* seed task clocks: the pool pays a spawn cost per task *)
  List.iteri
    (fun i t -> t.clock <- Int64.add caller_clock (Int64.mul spawn_cost (Int64.of_int (i + 1))))
    tasks;
  let start (t : task) : status =
    Effect.Deep.match_with
      (fun () ->
        ignore (Interp.call r.st t.fname t.targs);
        Done)
      ()
      {
        Effect.Deep.retc = (fun s -> s);
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Block cond ->
              Some
                (fun (k : (a, status) Effect.Deep.continuation) ->
                  Blocked (cond, k))
            | _ -> None);
      }
  in
  (* round-robin over runnable fibers, swapping the interpreter's clock *)
  let states : (task * status option ref) list =
    List.map (fun t -> (t, ref None)) tasks
  in
  let unfinished () =
    List.exists (fun (_, s) -> match !s with Some Done -> false | _ -> true) states
  in
  while unfinished () do
    let progressed = ref false in
    List.iter
      (fun ((t : task), s) ->
        match !s with
        | Some Done -> ()
        | None ->
          r.st.Interp.clock <- t.clock;
          let st' = start t in
          t.clock <- r.st.Interp.clock;
          s := Some st';
          progressed := true
        | Some (Blocked (cond, k)) ->
          if cond () then begin
            r.st.Interp.clock <- t.clock;
            let st' = Effect.Deep.continue k () in
            t.clock <- r.st.Interp.clock;
            s := Some st';
            progressed := true
          end)
      states;
    if not !progressed then
      Interp.trap "parallel runtime deadlock: %d tasks blocked"
        (List.length (List.filter (fun (_, s) -> !s <> Some Done) states))
  done;
  let finish =
    List.fold_left (fun acc (t : task) -> Int64.max acc t.clock) caller_clock tasks
  in
  r.st.Interp.clock <- Int64.add finish join_cost;
  r.sections <- r.sections + 1;
  r.par_cycles <- Int64.add r.par_cycles (Int64.sub r.st.Interp.clock caller_clock);
  r.tasks_executed <- r.tasks_executed + List.length tasks

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let install ?(arch : Noelle.Arch.t option) (st : Interp.state) : t =
  let latency =
    match arch with
    | Some a -> Int64.of_int (max 1 (Noelle.Arch.max_latency a))
    | None -> 60L
  in
  let r =
    {
      st;
      latency;
      pending = [];
      queues = Hashtbl.create 16;
      sigs = Hashtbl.create 16;
      next_handle = 1;
      next_tid = 0;
      sections = 0;
      par_cycles = 0L;
      tasks_executed = 0;
    }
  in
  let reg name fn = Interp.register_builtin st name fn in
  reg "task_submit" (fun st args ->
      match args with
      | [ fp; core; ncores; env ] ->
        let fname =
          match fp with
          | Interp.VP a -> (
            match Hashtbl.find_opt st.Interp.addr_fun a with
            | Some n -> n
            | None -> Interp.trap "task_submit: %d is not a function address" a)
          | _ -> Interp.trap "task_submit: expected function pointer"
        in
        let t =
          { tid = r.next_tid; fname; targs = [ core; ncores; env ]; clock = 0L }
        in
        r.next_tid <- r.next_tid + 1;
        r.pending <- r.pending @ [ t ];
        Interp.VI 0L
      | _ -> Interp.trap "task_submit: expected 4 arguments");
  reg "tasks_run" (fun _ args ->
      (match args with [] -> () | _ -> Interp.trap "tasks_run: no arguments expected");
      let ts = r.pending in
      r.pending <- [];
      if ts <> [] then run_tasks r ts;
      Interp.VI 0L);
  reg "q_new" (fun _ _ ->
      let h = r.next_handle in
      r.next_handle <- h + 1;
      Hashtbl.replace r.queues h (Queue.create ());
      Interp.VI (Int64.of_int h));
  let q_of v =
    let h = Int64.to_int (Interp.as_int v) in
    match Hashtbl.find_opt r.queues h with
    | Some q -> q
    | None -> Interp.trap "unknown queue %d" h
  in
  let push st args =
    match args with
    | [ q; v ] ->
      Queue.add (Int64.add st.Interp.clock r.latency, v) (q_of q);
      Interp.VI 0L
    | _ -> Interp.trap "q_push: expected 2 arguments"
  in
  let pop st args =
    match args with
    | [ qv ] ->
      let q = q_of qv in
      while Queue.is_empty q do
        Effect.perform (Block (fun () -> not (Queue.is_empty q)))
      done;
      let stamp, v = Queue.pop q in
      st.Interp.clock <- Int64.max st.Interp.clock stamp;
      v
    | _ -> Interp.trap "q_pop: expected 1 argument"
  in
  reg "q_push" push;
  reg "q_push_f" push;
  reg "q_pop" pop;
  reg "q_pop_f" pop;
  reg "sig_new" (fun _ _ ->
      let h = r.next_handle in
      r.next_handle <- h + 1;
      Hashtbl.replace r.sigs h (ref 0L, ref 0L);
      Interp.VI (Int64.of_int h));
  let sig_of v =
    let h = Int64.to_int (Interp.as_int v) in
    match Hashtbl.find_opt r.sigs h with
    | Some s -> s
    | None -> Interp.trap "unknown signal %d" h
  in
  reg "sig_wait" (fun st args ->
      match args with
      | [ sv; kv ] ->
        let value, stamp = sig_of sv in
        let k = Interp.as_int kv in
        while !value < k do
          Effect.perform (Block (fun () -> !value >= k))
        done;
        st.Interp.clock <- Int64.max st.Interp.clock !stamp;
        Interp.VI 0L
      | _ -> Interp.trap "sig_wait: expected 2 arguments");
  reg "sig_set" (fun st args ->
      match args with
      | [ sv; kv ] ->
        let value, stamp = sig_of sv in
        let k = Interp.as_int kv in
        if k > !value then begin
          value := k;
          stamp := Int64.add st.Interp.clock r.latency
        end;
        Interp.VI 0L
      | _ -> Interp.trap "sig_set: expected 2 arguments");
  r

(* ------------------------------------------------------------------ *)
(* Measurement entry points                                            *)
(* ------------------------------------------------------------------ *)

(** Run [m]'s entry under the parallel runtime.  Returns (exit value,
    output, simulated cycles, runtime stats). *)
let run ?(entry = "main") ?(args = []) ?fuel ?arch (m : Irmod.t) =
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let r = install ?arch st in
  let v = Interp.call st entry (List.map (fun n -> Interp.VI (Int64.of_int n)) args) in
  (v, Buffer.contents st.Interp.output, st.Interp.clock, r)

(** Sequential reference run: simulated cycles = dynamic instructions. *)
let run_sequential ?(entry = "main") ?(args = []) ?fuel (m : Irmod.t) =
  let st = Interp.create m in
  (match fuel with Some f -> st.Interp.fuel <- f | None -> ());
  let v = Interp.call st entry (List.map (fun n -> Interp.VI (Int64.of_int n)) args) in
  (v, Buffer.contents st.Interp.output, st.Interp.clock)
