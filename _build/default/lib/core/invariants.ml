(** Loop invariants via the PDG (INV, §2.2 and Algorithm 2).

    NOELLE's invariant detection is the paper's flagship example of the
    power of building on a higher-level abstraction: instead of LLVM's
    case analysis over loads/stores/calls with alias queries and dominator
    walks (Algorithm 1, reproduced in {!Invariants_llvm}), it recurses over
    the PDG: an instruction is invariant when everything it depends on is
    either outside the loop or itself invariant, with a visit stack cutting
    cycles.  Smaller, simpler, and more precise (Figure 4). *)

open Ir

type t = {
  ls : Loopstructure.t;
  invariant : (int, bool) Hashtbl.t;  (** memoized per-instruction answers *)
}

(** Is instruction [id] an invariant of the loop?  Faithful to Algorithm 2:
    [s] is the stack of instructions currently under analysis. *)
let rec is_invariant_rec (pdg : Pdg.t) (ls : Loopstructure.t) memo (s : int list)
    (id : int) : bool =
  match Hashtbl.find_opt memo id with
  | Some r -> r
  | None ->
    if List.mem id s then false
    else begin
      let f = ls.Loopstructure.f in
      let i = Func.inst f id in
      let candidate =
        match i.Instr.op with
        | Instr.Phi _ | Instr.Br _ | Instr.Cbr _ | Instr.Ret _ | Instr.Unreachable
        | Instr.Alloca _ -> false
        | Instr.Store _ -> false (* a store computes no loop-usable value *)
        | Instr.Call (callee, _) -> Alias.is_pure_builtin callee
        | _ -> true
      in
      let r =
        candidate
        && List.for_all
             (fun (e : Depgraph.edge) ->
               match e.Depgraph.kind with
               | Depgraph.Control ->
                 true
                 (* the loop's own branches gate every instruction in the
                    body; invariance is about the produced value, so only
                    data dependences participate in the recursion *)
               | _ -> (
                 let j = e.Depgraph.esrc in
                 match Func.inst_opt f j with
                 | Some ji when Loopstructure.contains_inst ls ji ->
                   is_invariant_rec pdg ls memo (id :: s) j
                 | _ -> true (* dependence from outside the loop *)))
             (Depgraph.preds pdg.Pdg.fdg id)
      in
      Hashtbl.replace memo id r;
      r
    end

(** Compute the invariants of loop [ls] using the PDG. *)
let compute (pdg : Pdg.t) (ls : Loopstructure.t) : t =
  let memo = Hashtbl.create 64 in
  List.iter
    (fun (i : Instr.inst) ->
      ignore (is_invariant_rec pdg ls memo [] i.Instr.id))
    (Loopstructure.insts ls);
  { ls; invariant = memo }

let is_invariant (t : t) id =
  match Hashtbl.find_opt t.invariant id with Some r -> r | None -> false

(** The invariant instructions, in loop layout order. *)
let invariants (t : t) =
  List.filter
    (fun (i : Instr.inst) -> is_invariant t i.Instr.id)
    (Loopstructure.insts t.ls)

let count (t : t) = List.length (invariants t)

(** Is a {e value} invariant in the loop (constants and values defined
    outside trivially are)? *)
let value_invariant (t : t) (v : Instr.value) =
  Scev.is_invariant_value t.ls.Loopstructure.f t.ls.Loopstructure.raw v
  || match v with Instr.Reg r -> is_invariant t r | _ -> false
