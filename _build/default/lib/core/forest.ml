(** Forest of trees (FR, §2.2).

    A generic forest with the capability the paper calls out: when a node
    is deleted, its children are re-attached to its parent, preserving the
    connections between the deleted node's parent and children.  NOELLE
    uses it for the loop nesting forest (LICM walks it innermost-out;
    HELIX/DSWP/DOALL use it to pick profitable loops) and for call-graph
    derived trees. *)

type 'a node = {
  value : 'a;
  mutable parent : 'a node option;
  mutable children : 'a node list;
  mutable deleted : bool;
}

type 'a t = { mutable roots : 'a node list }

let create () = { roots = [] }

let add_root (t : 'a t) v =
  let n = { value = v; parent = None; children = []; deleted = false } in
  t.roots <- t.roots @ [ n ];
  n

let add_child (parent : 'a node) v =
  let n = { value = v; parent = Some parent; children = []; deleted = false } in
  parent.children <- parent.children @ [ n ];
  n

(** Delete [n], re-attaching its children to its parent (or promoting them
    to roots). *)
let delete (t : 'a t) (n : 'a node) =
  if not n.deleted then begin
    n.deleted <- true;
    List.iter (fun c -> c.parent <- n.parent) n.children;
    (match n.parent with
    | Some p ->
      p.children <-
        List.concat_map (fun c -> if c == n then n.children else [ c ]) p.children
    | None ->
      t.roots <-
        List.concat_map (fun c -> if c == n then n.children else [ c ]) t.roots);
    n.children <- []
  end

(** Preorder traversal (roots first, then children depth-first). *)
let iter_preorder fn (t : 'a t) =
  let rec go n =
    fn n;
    List.iter go n.children
  in
  List.iter go t.roots

(** Postorder traversal: children before parents — the innermost-first
    order LICM hoists in. *)
let iter_postorder fn (t : 'a t) =
  let rec go n =
    List.iter go n.children;
    fn n
  in
  List.iter go t.roots

let nodes_postorder (t : 'a t) =
  let acc = ref [] in
  iter_postorder (fun n -> acc := n :: !acc) t;
  List.rev !acc

let size (t : 'a t) =
  let n = ref 0 in
  iter_preorder (fun _ -> incr n) t;
  !n

let depth (n : 'a node) =
  let rec go acc = function None -> acc | Some p -> go (acc + 1) p.parent in
  go 1 n.parent

(** Build the loop nesting forest of a function from {!Ir.Loopnest}. *)
let of_loopnest (nest : Ir.Loopnest.t) : Ir.Loopnest.loop t =
  let t = create () in
  let node_of : (int, Ir.Loopnest.loop node) Hashtbl.t = Hashtbl.create 8 in
  let rec ensure (l : Ir.Loopnest.loop) =
    match Hashtbl.find_opt node_of l.Ir.Loopnest.header with
    | Some n -> n
    | None ->
      let n =
        match l.Ir.Loopnest.parent with
        | None -> add_root t l
        | Some p -> add_child (ensure p) l
      in
      Hashtbl.replace node_of l.Ir.Loopnest.header n;
      n
  in
  List.iter (fun l -> ignore (ensure l)) nest.Ir.Loopnest.loops;
  t
