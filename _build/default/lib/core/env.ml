(** The Environment abstraction (ENV, §2.2).

    An environment is an array of variables carrying the incoming (live-in)
    and outgoing (live-out) values of a set of instructions — the paper's
    mechanism for explicitly forwarding values between the code that
    surrounds a parallelized loop and the tasks executing it.  The
    {e Environment Builder} below creates, modifies and queries
    environments and emits the IR that allocates and populates them. *)

open Ir

type role = Live_in | Live_out

type slot = {
  index : int;
  sname : string;              (** diagnostic name *)
  sty : Ty.t;
  role : role;
}

type t = { mutable slots : slot list (* reverse order *) }

let create () = { slots = [] }

(** Register a new variable; returns its index in the environment array. *)
let add (t : t) ~name ~ty ~role =
  let index = List.length t.slots in
  t.slots <- { index; sname = name; sty = ty; role } :: t.slots;
  index

let size (t : t) = List.length t.slots
let slots (t : t) = List.rev t.slots

let live_ins (t : t) = List.filter (fun s -> s.role = Live_in) (slots t)
let live_outs (t : t) = List.filter (fun s -> s.role = Live_out) (slots t)

(* ------------------------------------------------------------------ *)
(* Builder: IR emission                                                 *)
(* ------------------------------------------------------------------ *)

(** Allocate the environment array in block [bid]; returns the pointer. *)
let emit_alloc (t : t) (f : Func.t) bid : Instr.value =
  let n = max (size t) 1 in
  Instr.Reg (Builder.add f bid (Instr.Alloca (Instr.Cint (Int64.of_int n))) Ty.Ptr).Instr.id

(** Store [v] into slot [index] of the environment at [env_ptr]. *)
let emit_store (f : Func.t) bid ~env_ptr ~index v =
  let addr =
    if index = 0 then env_ptr
    else
      Instr.Reg
        (Builder.add f bid (Instr.Gep (env_ptr, Instr.Cint (Int64.of_int index))) Ty.Ptr)
          .Instr.id
  in
  ignore (Builder.add f bid (Instr.Store (v, addr)) Ty.Void)

(** Load slot [index] of the environment at [env_ptr] as a value of type
    [ty]. *)
let emit_load (f : Func.t) bid ~env_ptr ~index ty : Instr.value =
  let addr =
    if index = 0 then env_ptr
    else
      Instr.Reg
        (Builder.add f bid (Instr.Gep (env_ptr, Instr.Cint (Int64.of_int index))) Ty.Ptr)
          .Instr.id
  in
  Instr.Reg (Builder.add f bid (Instr.Load addr) ty).Instr.id

(** Like {!emit_load} but inserting before instruction [before]. *)
let emit_load_before (f : Func.t) ~before ~env_ptr ~index ty : Instr.value =
  let addr =
    if index = 0 then env_ptr
    else
      Instr.Reg
        (Builder.insert_before f ~before
           (Instr.Gep (env_ptr, Instr.Cint (Int64.of_int index)))
           Ty.Ptr)
          .Instr.id
  in
  Instr.Reg (Builder.insert_before f ~before (Instr.Load addr) ty).Instr.id
