(** Induction variables (IV, §2.2).

    Because the IR is SSA, an induction variable is embodied by an SCC of
    the loop's aSCCDAG: a header phi plus its update arithmetic.  NOELLE's
    detector works on that SCC and therefore handles while-shaped loops,
    do-while-shaped loops, and rotated forms alike; it also identifies the
    {e governing} IV (the one that controls the number of iterations) and
    derived IVs.  Contrast with {!Indvars_llvm}, the baseline detector that
    reproduces LLVM's do-while-only behaviour for the §4.3 experiment. *)

open Ir

type governing = {
  cmp : Instr.inst;            (** the comparison deciding the exit *)
  br : Instr.inst;             (** the conditional branch using it *)
  bound : Instr.value;         (** loop-invariant bound *)
  pred : Instr.cmp;            (** predicate with IV on the left *)
  exit_on_false : bool;        (** does the false edge leave the loop? *)
}

type t = {
  phi : Instr.inst;            (** the header phi *)
  start : Instr.value;         (** incoming value from outside the loop *)
  step : Instr.value;          (** loop-invariant step (negated for sub) *)
  update : Instr.inst;         (** the add/sub computing the next value *)
  scc : int list;              (** instruction ids of the IV's SCC *)
  governing : governing option;
}

type derived = {
  dinst : Instr.inst;          (** the derived value *)
  base_iv : t;                 (** IV it is derived from *)
}

let swap_pred = function
  | Instr.Slt -> Instr.Sgt
  | Instr.Sle -> Instr.Sge
  | Instr.Sgt -> Instr.Slt
  | Instr.Sge -> Instr.Sle
  | (Instr.Eq | Instr.Ne) as p -> p

(** Detect the basic IVs of loop [ls] from its dependence-graph SCCs. *)
let find (ls : Loopstructure.t) (dag : Sccdag.t) : t list =
  let f = ls.Loopstructure.f in
  let l = ls.Loopstructure.raw in
  let invariant v = Scev.is_invariant_value f l v in
  List.filter_map
    (fun (phi : Instr.inst) ->
      match phi.Instr.op with
      | Instr.Phi incs -> (
        let outside, inside =
          List.partition
            (fun (p, _) -> not (Loopnest.contains l p))
            incs
        in
        match (outside, inside) with
        | [ (_, start) ], [ (_, Instr.Reg upd_id) ] -> (
          match Func.inst_opt f upd_id with
          | Some ({ Instr.op = Instr.Bin (Instr.Add, a, b); _ } as upd) ->
            let step =
              if Instr.value_equal a (Instr.Reg phi.Instr.id) && invariant b then Some b
              else if Instr.value_equal b (Instr.Reg phi.Instr.id) && invariant a then Some a
              else None
            in
            Option.map
              (fun step ->
                let scc =
                  match Sccdag.scc_of_inst dag phi.Instr.id with
                  | Some sid -> (Sccdag.scc_by_id dag sid).Sccdag.members
                  | None -> [ phi.Instr.id; upd_id ]
                in
                { phi; start; step; update = upd; scc; governing = None })
              step
          | Some ({ Instr.op = Instr.Bin (Instr.Sub, a, Instr.Cint c); _ } as upd)
            when Instr.value_equal a (Instr.Reg phi.Instr.id) ->
            let scc =
              match Sccdag.scc_of_inst dag phi.Instr.id with
              | Some sid -> (Sccdag.scc_by_id dag sid).Sccdag.members
              | None -> [ phi.Instr.id; upd_id ]
            in
            Some
              {
                phi;
                start;
                step = Instr.Cint (Int64.neg c);
                update = upd;
                scc;
                governing = None;
              }
          | _ -> None)
        | _ -> None)
      | _ -> None)
    (Loopstructure.header_phis ls)

(** Attach governing information: the IV governs the loop when an exiting
    branch tests it (or its update) against a loop-invariant bound. *)
let detect_governing (ls : Loopstructure.t) (iv : t) : t =
  let f = ls.Loopstructure.f in
  let l = ls.Loopstructure.raw in
  let invariant v = Scev.is_invariant_value f l v in
  let found =
    List.find_map
      (fun (from_blk, to_blk) ->
        match Func.terminator f from_blk with
        | Some ({ Instr.op = Instr.Cbr (Instr.Reg c, _tgt, els); _ } as br) -> (
          match Func.inst_opt f c with
          | Some ({ Instr.op = Instr.Icmp (pred, a, b); _ } as cmp) ->
            let is_iv v =
              Instr.value_equal v (Instr.Reg iv.phi.Instr.id)
              || Instr.value_equal v (Instr.Reg iv.update.Instr.id)
            in
            let mk pred bound =
              let exit_on_false = els = to_blk in
              Some { cmp; br; bound; pred; exit_on_false }
            in
            if is_iv a && invariant b then mk pred b
            else if is_iv b && invariant a then mk (swap_pred pred) a
            else None
          | _ -> None)
        | _ -> None)
      ls.Loopstructure.exit_edges
  in
  { iv with governing = found }

(** All IVs of the loop, with governing info attached. *)
let analyze (ls : Loopstructure.t) (dag : Sccdag.t) : t list =
  List.map (detect_governing ls) (find ls dag)

(** The governing IV of the loop, if one exists. *)
let governing_iv (ivs : t list) = List.find_opt (fun iv -> iv.governing <> None) ivs

(** Derived IVs: values that are affine in a basic IV (e.g. [4*i + 2]). *)
let derived (ls : Loopstructure.t) (ivs : t list) : derived list =
  let f = ls.Loopstructure.f in
  let l = ls.Loopstructure.raw in
  let iv_ids = List.concat_map (fun iv -> iv.scc) ivs in
  List.filter_map
    (fun (i : Instr.inst) ->
      if List.mem i.Instr.id iv_ids then None
      else
        match i.Instr.op with
        | Instr.Bin ((Instr.Add | Instr.Sub | Instr.Mul | Instr.Shl), _, _)
        | Instr.Gep _ ->
          List.find_map
            (fun iv ->
              match Scev.affine_of f l ~iv_phi:iv.phi.Instr.id (Instr.Reg i.Instr.id) with
              | Some a when not (Int64.equal a.Scev.scale 0L) ->
                Some { dinst = i; base_iv = iv }
              | _ -> None)
            ivs
        | _ -> None)
    (Loopstructure.insts ls)

(** Trip count of a governed loop as a closed-form function of start,
    bound, and step, when all three are compile-time constants. *)
let const_trip_count (iv : t) =
  match (iv.governing, iv.start, iv.step) with
  | Some g, Instr.Cint s, Instr.Cint st when not (Int64.equal st 0L) -> (
    match g.bound with
    | Instr.Cint b ->
      let diff =
        match g.pred with
        | Instr.Slt | Instr.Sgt -> Int64.sub b s
        | Instr.Sle -> Int64.add (Int64.sub b s) 1L
        | Instr.Sge -> Int64.sub (Int64.sub b s) (-1L)
        | _ -> 0L
      in
      let q = Int64.div (Int64.add diff (Int64.sub st (if st > 0L then 1L else -1L))) st in
      if q < 0L then Some 0L else Some q
    | _ -> None)
  | _ -> None
