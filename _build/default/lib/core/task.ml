(** The Task abstraction (T, §2.2).

    A task is a code region that runs sequentially, with its inputs and
    outputs carried by an {!Env}.  Parallelization techniques partition the
    nodes of an aSCCDAG into tasks, create an environment for each, and
    submit the tasks to a thread pool at runtime.  Here the "thread pool"
    is the fiber scheduler of [lib/psim], reached through the
    [task_submit]/[tasks_run] runtime builtins it registers. *)

open Ir

type t = {
  tfunc : Func.t;              (** the generated task function *)
  env : Env.t;                 (** layout of its environment *)
  origin : string;             (** readable description (loop id etc.) *)
}

(** Standard task signature: [(core, ncores, env) -> void]. *)
let task_params = [ ("core", Ty.I64); ("ncores", Ty.I64); ("env", Ty.Ptr) ]

let core_arg = Instr.Arg 0
let ncores_arg = Instr.Arg 1
let env_arg = Instr.Arg 2

(** Create an empty task function named [name] in module [m], with an
    entry block, and register it. *)
let create (m : Irmod.t) ~name ~env ~origin : t * Func.block =
  let tfunc = Func.create ~name ~params:task_params ~ret:Ty.Void in
  Irmod.add_func m tfunc;
  let entry = Builder.add_block tfunc ~label:"entry" in
  ({ tfunc; env; origin }, entry)

(** Emit a [task_submit(@task, core, ncores, env)] call in block [bid] of
    [f]. *)
let emit_submit (f : Func.t) bid (t : t) ~core ~ncores ~env_ptr =
  ignore
    (Builder.add f bid
       (Instr.Call
          (Instr.Glob "task_submit",
           [ Instr.Glob t.tfunc.Func.fname; core; ncores; env_ptr ]))
       Ty.Void)

(** Emit the [tasks_run()] barrier that executes all submitted tasks. *)
let emit_run_all (f : Func.t) bid =
  ignore (Builder.add f bid (Instr.Call (Instr.Glob "tasks_run", [])) Ty.Void)

(** Declare the parallel-runtime entry points in [m] so the verifier knows
    them.  Idempotent. *)
let declare_runtime (m : Irmod.t) =
  let dec name params ret =
    if Irmod.func_opt m name = None then
      Irmod.add_func m (Func.declare ~name ~params ~ret)
  in
  dec "task_submit"
    [ ("fn", Ty.Ptr); ("core", Ty.I64); ("ncores", Ty.I64); ("env", Ty.Ptr) ]
    Ty.Void;
  dec "tasks_run" [] Ty.Void;
  dec "q_new" [] Ty.I64;
  dec "q_push" [ ("q", Ty.I64); ("v", Ty.I64) ] Ty.Void;
  dec "q_push_f" [ ("q", Ty.I64); ("v", Ty.F64) ] Ty.Void;
  dec "q_pop" [ ("q", Ty.I64) ] Ty.I64;
  dec "q_pop_f" [ ("q", Ty.I64) ] Ty.F64;
  dec "i64_max" [ ("a", Ty.I64); ("b", Ty.I64) ] Ty.I64;
  dec "i64_min" [ ("a", Ty.I64); ("b", Ty.I64) ] Ty.I64;
  dec "sig_new" [] Ty.I64;
  dec "sig_wait" [ ("s", Ty.I64); ("v", Ty.I64) ] Ty.Void;
  dec "sig_set" [ ("s", Ty.I64); ("v", Ty.I64) ] Ty.Void
