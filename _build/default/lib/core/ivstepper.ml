(** The induction-variable stepper (IVS, §2.2).

    Modifies the step (and start) of a loop's induction variables: the
    user specifies the new step value and the abstraction rewrites the
    loop.  The paper's motivating uses are loop rotation (negating steps)
    and DOALL chunking (multiplying the step by the core count and
    offsetting each task's start) — which is exactly how [lib/tools]'s
    DOALL uses this module on the cloned task body. *)

open Ir

exception Not_steppable of string

(** Replace the step of the IV whose phi is [phi_id] and whose update
    instruction is [update_id] in [f] with [new_step] (a value valid at
    the update's location). *)
let set_step (f : Func.t) ~update_id ~phi_id ~(new_step : Instr.value) =
  let upd = Func.inst f update_id in
  match upd.Instr.op with
  | Instr.Bin (Instr.Add, a, _b) when Instr.value_equal a (Instr.Reg phi_id) ->
    upd.Instr.op <- Instr.Bin (Instr.Add, a, new_step)
  | Instr.Bin (Instr.Add, _a, b) when Instr.value_equal b (Instr.Reg phi_id) ->
    upd.Instr.op <- Instr.Bin (Instr.Add, new_step, b)
  | Instr.Bin (Instr.Sub, a, _b) when Instr.value_equal a (Instr.Reg phi_id) ->
    (* keep the subtraction shape: step is the subtrahend *)
    let neg =
      Builder.insert_before f ~before:update_id
        (Instr.Bin (Instr.Sub, Instr.Cint 0L, new_step))
        Ty.I64
    in
    upd.Instr.op <- Instr.Bin (Instr.Sub, a, Instr.Reg neg.Instr.id)
  | _ ->
    raise
      (Not_steppable
         (Printf.sprintf "instruction %d is not a recognized IV update" update_id))

(** Multiply the IV's step by [factor] (emitting the multiply right before
    the update).  The subtraction shape is preserved by scaling the
    subtrahend directly, so down-counting loops keep counting down. *)
let scale_step (f : Func.t) ~update_id ~phi_id ~(factor : Instr.value) =
  let upd = Func.inst f update_id in
  let scaled v =
    Instr.Reg
      (Builder.insert_before f ~before:update_id (Instr.Bin (Instr.Mul, v, factor)) Ty.I64)
        .Instr.id
  in
  match upd.Instr.op with
  | Instr.Bin (Instr.Add, a, b) when Instr.value_equal a (Instr.Reg phi_id) ->
    upd.Instr.op <- Instr.Bin (Instr.Add, a, scaled b)
  | Instr.Bin (Instr.Add, a, b) when Instr.value_equal b (Instr.Reg phi_id) ->
    upd.Instr.op <- Instr.Bin (Instr.Add, scaled a, b)
  | Instr.Bin (Instr.Sub, a, b) when Instr.value_equal a (Instr.Reg phi_id) ->
    upd.Instr.op <- Instr.Bin (Instr.Sub, a, scaled b)
  | _ ->
    raise
      (Not_steppable
         (Printf.sprintf "instruction %d is not a recognized IV update" update_id))

(** Offset the IV's start: the phi's incoming value from [pred] becomes
    [init + delta], with the add emitted at the end of [pred]. *)
let offset_start (f : Func.t) ~phi_id ~pred ~(delta : Instr.value) =
  let phi = Func.inst f phi_id in
  match phi.Instr.op with
  | Instr.Phi incs -> (
    match List.assoc_opt pred incs with
    | None -> raise (Not_steppable (Printf.sprintf "phi %d has no incoming from %d" phi_id pred))
    | Some init ->
      let add =
        match Func.terminator f pred with
        | Some t ->
          Builder.insert_before f ~before:t.Instr.id
            (Instr.Bin (Instr.Add, init, delta))
            Ty.I64
        | None -> Builder.add f pred (Instr.Bin (Instr.Add, init, delta)) Ty.I64
      in
      phi.Instr.op <-
        Instr.Phi
          (List.map
             (fun (p, v) -> if p = pred then (p, Instr.Reg add.Instr.id) else (p, v))
             incs))
  | _ -> raise (Not_steppable (Printf.sprintf "instruction %d is not a phi" phi_id))
