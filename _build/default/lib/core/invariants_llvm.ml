(** Baseline loop-invariant detection (Algorithm 1 of the paper).

    Reproduces the simplified logic of LLVM's implementation, which relies
    on the low-level abstractions (operands, alias queries, dominators)
    instead of the PDG.  Its two sources of imprecision, both visible in
    Figure 4:

    - an instruction with an operand {e defined inside the loop} is
      rejected outright, so chains of invariants are missed;
    - loads are rejected whenever {e any} instruction in the loop may
      modify memory the baseline alias analysis cannot disambiguate. *)

open Ir

let is_invariant (m : Irmod.t) (ls : Loopstructure.t) (i : Instr.inst) : bool =
  let f = ls.Loopstructure.f in
  let stack = Andersen.baseline_stack in
  let in_loop_value v =
    match v with
    | Instr.Reg r -> (
      match Func.inst_opt f r with
      | Some d -> Loopstructure.contains_inst ls d
      | None -> false)
    | _ -> false
  in
  let loop_insts = Loopstructure.insts ls in
  match i.Instr.op with
  | Instr.Phi _ | Instr.Br _ | Instr.Cbr _ | Instr.Ret _ | Instr.Unreachable
  | Instr.Alloca _ -> false
  | op when List.exists in_loop_value (Instr.operands op) -> false
  | Instr.Load _ ->
    (* no instruction of L may modify the location *)
    not
      (List.exists
         (fun (j : Instr.inst) ->
           j.Instr.id <> i.Instr.id
           && (match j.Instr.op with
              | Instr.Store _ | Instr.Call _ -> Alias.may_conflict stack m f i j
              | _ -> false))
         loop_insts)
  | Instr.Store _ ->
    (* Algorithm 1 requires no memory use to precede the store AND the
       nearest dominating memory access to be outside L; the latter check
       conservatively fails for a store inside a loop *)
    false
  | Instr.Call (callee, _) ->
    (* only calls that cannot modify memory qualify *)
    Alias.is_pure_builtin callee
  | _ -> true

(** The invariants of loop [ls] per the baseline algorithm. *)
let compute (m : Irmod.t) (ls : Loopstructure.t) : Instr.inst list =
  List.filter (is_invariant m ls) (Loopstructure.insts ls)

let count (m : Irmod.t) (ls : Loopstructure.t) = List.length (compute m ls)
