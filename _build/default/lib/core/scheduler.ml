(** The scheduler abstraction (SCD, §2.2).

    Moves instructions within and among basic blocks while preserving the
    original semantics; preservation is guaranteed by consulting the PDG.
    The paper describes a hierarchy of schedulers — a generic one plus
    specialized ones (loop scheduler, within-basic-block scheduler); the
    specialized entry points below extend the generic legality core. *)

open Ir

type t = {
  pdg : Pdg.t;
  f : Func.t;
}

let create (pdg : Pdg.t) = { pdg; f = pdg.Pdg.f }

(** Is there a dependence (either direction) between instructions [a] and
    [b]? *)
let depend (t : t) a b =
  List.exists (fun (e : Depgraph.edge) -> e.Depgraph.edst = b) (Depgraph.succs t.pdg.Pdg.fdg a)
  || List.exists (fun (e : Depgraph.edge) -> e.Depgraph.edst = a) (Depgraph.succs t.pdg.Pdg.fdg b)

(** Data/memory dependence sources of [i] (excluding control). *)
let data_preds (t : t) i =
  List.filter_map
    (fun (e : Depgraph.edge) ->
      match e.Depgraph.kind with
      | Depgraph.Control -> None
      | _ -> Some e.Depgraph.esrc)
    (Depgraph.preds t.pdg.Pdg.fdg i)

let data_succs (t : t) i =
  List.filter_map
    (fun (e : Depgraph.edge) ->
      match e.Depgraph.kind with
      | Depgraph.Control -> None
      | _ -> Some e.Depgraph.edst)
    (Depgraph.succs t.pdg.Pdg.fdg i)

(** Can [id] legally move to just before [before] within the same block?
    Legal iff no instruction strictly between the two positions depends on
    [id] or is depended on by [id]. *)
let can_move_before (t : t) ~id ~before =
  let i = Func.inst t.f id and anchor = Func.inst t.f before in
  if Instr.is_terminator i then false
  else if i.Instr.parent <> anchor.Instr.parent then false
  else begin
    let b = Func.block t.f i.Instr.parent in
    let rec between acc started = function
      | [] -> List.rev acc
      | x :: rest ->
        if x = id || x = before then
          if started then List.rev acc else between acc true rest
        else if started then between (x :: acc) started rest
        else between acc started rest
    in
    let mids = between [] false b.Func.insts in
    not (List.exists (fun x -> depend t id x) mids)
  end

(** Move [id] before [before] if legal.  Returns whether it moved. *)
let move_before (t : t) ~id ~before =
  if can_move_before t ~id ~before then begin
    Builder.move_before t.f id ~before;
    true
  end
  else false

(** Within-basic-block scheduler: topologically order the instructions of
    block [bid] by their intra-block dependences, breaking ties with
    [priority] (lower first) and then original order.  Phis stay at the
    front and the terminator stays last. *)
let schedule_block (t : t) bid ~(priority : Instr.inst -> int) =
  let b = Func.block t.f bid in
  let ids = b.Func.insts in
  let is_phi x =
    match (Func.inst t.f x).Instr.op with Instr.Phi _ -> true | _ -> false
  in
  let phis = List.filter is_phi ids in
  let term =
    match List.rev ids with
    | last :: _ when Instr.is_terminator (Func.inst t.f last) -> [ last ]
    | _ -> []
  in
  let mid =
    List.filter (fun x -> (not (is_phi x)) && not (List.mem x term)) ids
  in
  let orig_pos = Hashtbl.create 16 in
  List.iteri (fun k x -> Hashtbl.replace orig_pos x k) mid;
  (* intra-block dependence edges among mid *)
  let deps_of x =
    List.filter (fun y -> y <> x && List.mem y mid) (data_preds t x)
    @ (* control deps within a block do not exist; memory edges are in
         data_preds *)
    []
  in
  let placed = Hashtbl.create 16 in
  let out = ref [] in
  let remaining = ref mid in
  while !remaining <> [] do
    let ready =
      List.filter
        (fun x -> List.for_all (fun d -> Hashtbl.mem placed d || not (List.mem d !remaining)) (deps_of x))
        !remaining
    in
    let pick =
      match ready with
      | [] -> List.hd !remaining (* dependence cycle inside a block: bail stably *)
      | _ ->
        List.fold_left
          (fun best x ->
            let key x = (priority (Func.inst t.f x), Hashtbl.find orig_pos x) in
            if key x < key best then x else best)
          (List.hd ready) (List.tl ready)
    in
    Hashtbl.replace placed pick ();
    out := pick :: !out;
    remaining := List.filter (fun x -> x <> pick) !remaining
  done;
  b.Func.insts <- phis @ List.rev !out @ term

(** Loop scheduler: shrink the loop header by sinking instructions that
    are only used in the body into the body's entry block.  Returns how
    many instructions were sunk.  (The paper: "each scheduler augments the
    generic capabilities with specialized capabilities, e.g. reducing the
    header size of a loop".) *)
let shrink_header (t : t) (ls : Loopstructure.t) =
  let f = t.f in
  let header = ls.Loopstructure.header in
  (* the body entry: the in-loop successor of the header *)
  match
    List.find_opt (fun s -> Loopstructure.contains ls s) (Func.successors f header)
  with
  | None -> 0
  | Some body_entry ->
    let preds = Func.preds f in
    let body_preds = try Hashtbl.find preds body_entry with Not_found -> [] in
    if body_preds <> [ header ] then 0
    else begin
      let moved = ref 0 in
      let dt = Dom.compute f in
      let header_insts = (Func.block f header).Func.insts in
      (* candidates: non-phi, non-terminator, no memory writes, every data
         successor inside the body (not the header's own terminator) *)
      let term = Option.map (fun (i : Instr.inst) -> i.Instr.id) (Func.terminator f header) in
      List.iter
        (fun id ->
          let i = Func.inst f id in
          let movable =
            (match i.Instr.op with
            | Instr.Phi _ | Instr.Store _ | Instr.Call _ -> false
            | op when Instr.is_terminator_op op -> false
            | _ -> true)
            && List.for_all
                 (fun s ->
                   Some s <> term
                   &&
                   match Func.inst_opt f s with
                   | Some u ->
                     u.Instr.parent <> header
                     && Dom.dominates dt body_entry u.Instr.parent
                   | None -> true)
                 (data_succs t id)
            && (* the header terminator must not depend on it *)
            (match term with Some tid -> not (depend t id tid) | None -> true)
          in
          if movable then begin
            (* move to front of body entry, after phis *)
            let bb = Func.block f body_entry in
            let rec first_nonphi = function
              | x :: rest -> (
                match (Func.inst f x).Instr.op with
                | Instr.Phi _ -> first_nonphi rest
                | _ -> Some x)
              | [] -> None
            in
            (match first_nonphi bb.Func.insts with
            | Some anchor -> Builder.move_before f id ~before:anchor
            | None -> Builder.move_to_end f id ~bid:body_entry);
            incr moved
          end)
        header_insts;
      !moved
    end
