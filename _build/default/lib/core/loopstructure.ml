(** Loop structure (LS, §2.2).

    Describes the structure of a loop: header, pre-header, latches, exits,
    basic blocks.  Equivalent to LLVM's loop abstraction but with
    caller-controlled lifetime (a plain value).  The richer canonical loop
    abstraction L ({!Loop}) adds the dependence graph, invariants, and
    induction variables on top of LS. *)

open Ir

type shape =
  | While_shape     (** exit test in the header, before the body *)
  | Do_while_shape  (** exit test in the latch, after the body *)
  | Other_shape

type t = {
  f : Func.t;
  raw : Loopnest.loop;
  header : int;
  preheader : int option;
  latches : int list;
  blocks : int list;                  (** in function layout order *)
  exit_edges : (int * int) list;      (** (inside block, outside target) *)
  exit_targets : int list;
  depth : int;
}

let of_loop (f : Func.t) (l : Loopnest.loop) : t =
  {
    f;
    raw = l;
    header = l.Loopnest.header;
    preheader = Loopnest.preheader f l;
    latches = l.Loopnest.latches;
    blocks = List.filter (fun b -> Loopnest.contains l b) f.Func.blocks;
    exit_edges = Loopnest.exit_edges f l;
    exit_targets = Loopnest.exit_targets f l;
    depth = l.Loopnest.depth;
  }

let contains (t : t) bid = Loopnest.contains t.raw bid
let contains_inst (t : t) (i : Instr.inst) = contains t i.Instr.parent

(** Instructions of the loop in layout order. *)
let insts (t : t) = Loopnest.insts t.f t.raw

(** Header phis of the loop. *)
let header_phis (t : t) =
  List.filter
    (fun (i : Instr.inst) -> match i.Instr.op with Instr.Phi _ -> true | _ -> false)
    (Func.insts_of_block t.f t.header)

(** Blocks inside the loop whose terminator can leave the loop. *)
let exiting_blocks (t : t) = List.sort_uniq compare (List.map fst t.exit_edges)

(** Shape of the loop (see §4.3: LLVM's induction-variable analysis only
    handles do-while-shaped loops; NOELLE handles both). *)
let shape (t : t) =
  let exiting = exiting_blocks t in
  let is_latch b = List.mem b t.latches in
  if List.mem t.header exiting && not (List.exists is_latch exiting) then While_shape
  else if List.exists is_latch exiting then Do_while_shape
  else Other_shape

(** The single exit target if the loop has exactly one. *)
let single_exit (t : t) =
  match t.exit_targets with [ e ] -> Some e | _ -> None

(** Number of instructions in the loop body. *)
let size (t : t) = List.length (insts t)
