(** Baseline induction-variable detection with LLVM's limitations.

    §4.3: "LLVM's induction variable analysis expects the input IR to have
    loops in the do-while shape ... LLVM identifies only a few loop
    induction variables (11 total) ... NOELLE identifies many (385)".
    This module reproduces the baseline side of that comparison: it only
    recognizes an induction variable when

    - the loop is in do-while shape (the exit test is in the latch), and
    - the variable is a header phi whose update is an add of a constant
      located in the latch block (the canonical rotated-loop pattern LLVM's
      low-level def-use matching expects).

    The governing IV is then only found when the latch comparison directly
    tests that phi's update against a constant. *)

open Ir

(** Detect (phi, update) pairs the baseline recognizes, and whether each
    governs the loop. *)
let analyze (ls : Loopstructure.t) : (Instr.inst * bool) list =
  let f = ls.Loopstructure.f in
  let l = ls.Loopstructure.raw in
  if Loopstructure.shape ls <> Loopstructure.Do_while_shape then []
  else
    let latches = ls.Loopstructure.latches in
    List.filter_map
      (fun (phi : Instr.inst) ->
        match phi.Instr.op with
        | Instr.Phi incs -> (
          let inside =
            List.filter (fun (p, _) -> Loopnest.contains l p) incs
          in
          match inside with
          | [ (_, Instr.Reg upd_id) ] -> (
            match Func.inst_opt f upd_id with
            | Some { Instr.op = Instr.Bin (Instr.Add, a, Instr.Cint _); _ }
              when Instr.value_equal a (Instr.Reg phi.Instr.id) ->
              (* governing: the latch terminator's comparison must test the
                 update against a constant *)
              let governs =
                List.exists
                  (fun latch ->
                    match Func.terminator f latch with
                    | Some { Instr.op = Instr.Cbr (Instr.Reg c, _, _); _ } -> (
                      match Func.inst_opt f c with
                      | Some { Instr.op = Instr.Icmp (_, x, Instr.Cint _); _ } ->
                        Instr.value_equal x (Instr.Reg upd_id)
                        || Instr.value_equal x (Instr.Reg phi.Instr.id)
                      | _ -> false)
                    | _ -> false)
                  latches
              in
              Some (phi, governs)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      (Loopstructure.header_phis ls)

(** Number of governing IVs the baseline finds in this loop (0 or 1). *)
let governing_count (ls : Loopstructure.t) =
  if List.exists snd (analyze ls) then 1 else 0
