(** Reduction detection (RD, §2.2).

    Identifies loop accumulations that are reducible by cloning the
    accumulator per task and combining partial results afterwards
    (the paper's example: [s += work(d)]).  A reduction is a header phi
    whose only in-loop uses form an associative-commutative update chain
    (sum, product, bitwise and/or/xor, min/max via select). *)

open Ir

type kind = Sum | Prod | Fsum | Fprod | Band | Bor | Bxor | Min | Max | Fmin | Fmax

type t = {
  phi : Instr.inst;          (** the accumulator phi *)
  update : Instr.inst;       (** final update producing the next value *)
  kind : kind;
  init : Instr.value;        (** incoming value from outside the loop *)
  chain : int list;          (** instruction ids of the update chain *)
}

let kind_to_string = function
  | Sum -> "sum" | Prod -> "prod" | Fsum -> "fsum" | Fprod -> "fprod"
  | Band -> "and" | Bor -> "or" | Bxor -> "xor"
  | Min -> "min" | Max -> "max" | Fmin -> "fmin" | Fmax -> "fmax"

(** Identity element of a reduction kind, used to seed per-task private
    accumulators. *)
let identity = function
  | Sum -> Instr.Cint 0L
  | Prod -> Instr.Cint 1L
  | Fsum -> Instr.Cfloat 0.0
  | Fprod -> Instr.Cfloat 1.0
  | Band -> Instr.Cint (-1L)
  | Bor -> Instr.Cint 0L
  | Bxor -> Instr.Cint 0L
  | Min -> Instr.Cint Int64.max_int
  | Max -> Instr.Cint Int64.min_int
  | Fmin -> Instr.Cfloat infinity
  | Fmax -> Instr.Cfloat neg_infinity

(** The IR value type a reduction of this kind accumulates. *)
let value_ty = function
  | Fsum | Fprod | Fmin | Fmax -> Ty.F64
  | _ -> Ty.I64

(** Emit instructions combining two partial results into block [bid] of
    [f]; returns the combined value.  Min/max need a compare + select. *)
let emit_combine (f : Func.t) bid kind a b : Instr.value =
  let add op ty = Instr.Reg (Builder.add f bid op ty).Instr.id in
  match kind with
  | Sum -> add (Instr.Bin (Instr.Add, a, b)) Ty.I64
  | Prod -> add (Instr.Bin (Instr.Mul, a, b)) Ty.I64
  | Fsum -> add (Instr.Fbin (Instr.Fadd, a, b)) Ty.F64
  | Fprod -> add (Instr.Fbin (Instr.Fmul, a, b)) Ty.F64
  | Band -> add (Instr.Bin (Instr.And, a, b)) Ty.I64
  | Bor -> add (Instr.Bin (Instr.Or, a, b)) Ty.I64
  | Bxor -> add (Instr.Bin (Instr.Xor, a, b)) Ty.I64
  | Min -> add (Instr.Call (Instr.Glob "i64_min", [ a; b ])) Ty.I64
  | Max -> add (Instr.Call (Instr.Glob "i64_max", [ a; b ])) Ty.I64
  | Fmin ->
    let c = add (Instr.Fcmp (Instr.Slt, a, b)) Ty.I64 in
    add (Instr.Select (c, a, b)) Ty.F64
  | Fmax ->
    let c = add (Instr.Fcmp (Instr.Sgt, a, b)) Ty.I64 in
    add (Instr.Select (c, a, b)) Ty.F64

(** Detect the reductions of loop [ls].  An accumulator must:
    - be a header phi with a unique in-loop incoming update;
    - have every in-loop use inside the accumulation chain (so partial
      sums never leak into other computation);
    - use a single associative-commutative operation along the chain. *)
let find (ls : Loopstructure.t) : t list =
  let f = ls.Loopstructure.f in
  let l = ls.Loopstructure.raw in
  List.filter_map
    (fun (phi : Instr.inst) ->
      match phi.Instr.op with
      | Instr.Phi incs -> (
        let outside, inside =
          List.partition (fun (p, _) -> not (Loopnest.contains l p)) incs
        in
        match (outside, inside) with
        | [ (_, init) ], [ (_, Instr.Reg upd_id) ] -> (
          match Func.inst_opt f upd_id with
          | None -> None
          | Some upd ->
            (* the chain is the sequence of same-kind ops linking phi to
               update; we accept chains of length >= 1, all of one kind *)
            let acc_val = Instr.Reg phi.Instr.id in
            let kind_of (i : Instr.inst) ~carries =
              match i.Instr.op with
              | Instr.Bin (Instr.Add, a, b) when carries a || carries b -> Some Sum
              | Instr.Bin (Instr.Mul, a, b) when carries a || carries b -> Some Prod
              | Instr.Bin (Instr.And, a, b) when carries a || carries b -> Some Band
              | Instr.Bin (Instr.Or, a, b) when carries a || carries b -> Some Bor
              | Instr.Bin (Instr.Xor, a, b) when carries a || carries b -> Some Bxor
              | Instr.Fbin (Instr.Fadd, a, b) when carries a || carries b -> Some Fsum
              | Instr.Fbin (Instr.Fmul, a, b) when carries a || carries b -> Some Fprod
              | Instr.Call (Instr.Glob "i64_min", [ a; b ]) when carries a || carries b ->
                Some Min
              | Instr.Call (Instr.Glob "i64_max", [ a; b ]) when carries a || carries b ->
                Some Max
              | Instr.Select (Instr.Reg c, a, b) when carries a || carries b -> (
                (* min/max via select over a comparison involving the acc *)
                match Func.inst_opt f c with
                | Some { Instr.op = Instr.Icmp ((Instr.Slt | Instr.Sle), x, y); _ }
                  when (carries x || carries y) && carries a <> carries b ->
                  Some (if carries a && carries x then Min
                        else if carries b && carries y then Min
                        else Max)
                | Some { Instr.op = Instr.Icmp ((Instr.Sgt | Instr.Sge), x, y); _ }
                  when (carries x || carries y) && carries a <> carries b ->
                  Some (if carries a && carries x then Max
                        else if carries b && carries y then Max
                        else Min)
                | Some { Instr.op = Instr.Fcmp ((Instr.Slt | Instr.Sle), x, y); _ }
                  when (carries x || carries y) && carries a <> carries b ->
                  Some (if carries a && carries x then Fmin
                        else if carries b && carries y then Fmin
                        else Fmax)
                | Some { Instr.op = Instr.Fcmp ((Instr.Sgt | Instr.Sge), x, y); _ }
                  when (carries x || carries y) && carries a <> carries b ->
                  Some (if carries a && carries x then Fmax
                        else if carries b && carries y then Fmax
                        else Fmin)
                | _ -> None)
              | _ -> None
            in
            (* walk the chain from phi to update following unique uses *)
            let chain = ref [] in
            let kind = ref None in
            let ok = ref true in
            let cur = ref acc_val in
            let steps = ref 0 in
            let phi_cmp_users = ref [] in
            while !ok && not (Instr.value_equal !cur (Instr.Reg upd_id)) && !steps < 8 do
              incr steps;
              let users =
                Func.fold_insts
                  (fun acc i ->
                    if Loopnest.contains l i.Instr.parent
                       && List.exists (Instr.value_equal !cur) (Instr.operands i.Instr.op)
                    then i :: acc
                    else acc)
                  [] f
              in
              (* a min/max select pattern has the cmp as an extra user *)
              let users =
                List.filter
                  (fun (u : Instr.inst) ->
                    match u.Instr.op with
                    | Instr.Icmp _ | Instr.Fcmp _ ->
                      phi_cmp_users := u.Instr.id :: !phi_cmp_users;
                      false
                    | _ -> true)
                  users
              in
              match users with
              | [ u ] -> (
                let carries v = Instr.value_equal v !cur in
                match kind_of u ~carries with
                | Some k ->
                  (match !kind with
                  | None -> kind := Some k
                  | Some k0 when k0 = k -> ()
                  | Some _ -> ok := false);
                  chain := u.Instr.id :: !chain;
                  cur := Instr.Reg u.Instr.id
                | None -> ok := false)
              | _ -> ok := false
            done;
            if !ok && Instr.value_equal !cur (Instr.Reg upd_id) then
              match !kind with
              | Some k ->
                (* cmp users are only allowed for min/max selects *)
                let allowed_cmps =
                  match k with Min | Max | Fmin | Fmax -> true | _ -> false
                in
                if !phi_cmp_users <> [] && not allowed_cmps then None
                else
                  Some
                    {
                      phi;
                      update = upd;
                      kind = k;
                      init;
                      chain = List.rev_append !phi_cmp_users !chain;
                    }
              | None -> None
            else None)
        | _ -> None)
      | _ -> None)
    (Loopstructure.header_phis ls)
