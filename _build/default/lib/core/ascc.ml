(** The augmented SCCDAG (aSCCDAG, §2.2).

    Attaches an attribute to each SCC of the loop dependence graph:

    - {e Independent}: all dynamic instances of the SCC's instructions in a
      loop invocation are independent of each other;
    - {e Sequential}: an instance depends on another instance (a genuine
      loop-carried recurrence);
    - {e Reducible}: instances depend on each other but only through an
      associative-commutative accumulation ({!Reduction});
    - {e Induction}: the recurrence is an induction variable
      ({!Indvars}), which parallelizing transformations rewrite in closed
      form rather than execute serially. *)

type attr =
  | Independent
  | Sequential
  | Reducible of Reduction.t
  | Induction of Indvars.t

type node = {
  scc : Sccdag.scc;
  attr : attr;
}

type t = {
  nodes : node list;           (** reverse-topological order, as {!Sccdag} *)
  dag : Sccdag.t;
  ivs : Indvars.t list;
  reductions : Reduction.t list;
  ls : Loopstructure.t;
  cross_carried : Depgraph.edge list;
      (** loop-carried dependences between {e different} SCCs (e.g. a phi
          chain [h1 = h0]): invisible to per-SCC attributes, fatal for
          iteration-distributing parallelization, harmless for DSWP *)
}

let attr_to_string = function
  | Independent -> "independent"
  | Sequential -> "sequential"
  | Reducible r -> "reducible(" ^ Reduction.kind_to_string r.Reduction.kind ^ ")"
  | Induction _ -> "induction"

(** Classify every SCC of the loop. *)
let build (ls : Loopstructure.t) (dag : Sccdag.t) : t =
  let ivs = Indvars.analyze ls dag in
  let reductions = Reduction.find ls in
  let member_of ids (s : Sccdag.scc) =
    List.exists (fun id -> List.mem id s.Sccdag.members) ids
  in
  let nodes =
    List.map
      (fun (s : Sccdag.scc) ->
        let attr =
          match
            List.find_opt (fun iv -> member_of [ iv.Indvars.phi.Ir.Instr.id ] s) ivs
          with
          | Some iv -> Induction iv
          | None -> (
            match
              List.find_opt
                (fun r -> member_of [ r.Reduction.phi.Ir.Instr.id ] s)
                reductions
            with
            | Some r -> Reducible r
            | None -> if Sccdag.is_carried s then Sequential else Independent)
        in
        { scc = s; attr })
      dag.Sccdag.sccs
  in
  let cross_carried =
    List.filter
      (fun (e : Depgraph.edge) ->
        e.Depgraph.loop_carried
        &&
        match
          ( Sccdag.scc_of_inst dag e.Depgraph.esrc,
            Sccdag.scc_of_inst dag e.Depgraph.edst )
        with
        | Some a, Some b -> a <> b
        | _ -> false)
      (Depgraph.edges dag.Sccdag.ldg.Pdg.ldg)
  in
  { nodes; dag; ivs; reductions; ls; cross_carried }

let has_cross_carried (t : t) = t.cross_carried <> []

let sequential_nodes (t : t) =
  List.filter (fun n -> n.attr = Sequential) t.nodes

let has_sequential (t : t) = sequential_nodes t <> []

(** The attribute of the SCC containing instruction [id]. *)
let attr_of_inst (t : t) id =
  Option.map
    (fun sid -> (List.find (fun n -> n.scc.Sccdag.sid = sid) t.nodes).attr)
    (Sccdag.scc_of_inst t.dag id)

(** Instruction count weight of a node (used by DSWP stage balancing and
    HELIX segment scheduling, optionally scaled by profile hotness). *)
let weight (n : node) = Sccdag.size n.scc
