(** SCCDAG of a loop dependence graph.

    The strongly-connected components of the loop's dependence graph,
    arranged as a DAG.  This is the raw structure underneath the augmented
    SCCDAG ({!Ascc}), which attaches Independent/Sequential/Reducible
    attributes to each component. *)

type scc = {
  sid : int;
  members : int list;             (** instruction ids, in discovery order *)
  mutable carried_internal : bool;
      (** some loop-carried dependence connects two members *)
}

type t = {
  sccs : scc list;                (** reverse-topological order *)
  node_scc : (int, int) Hashtbl.t;   (** instruction id -> scc id *)
  dag_succ : (int, int list) Hashtbl.t;  (** scc id -> successor scc ids *)
  ldg : Pdg.loop_dg;
}

let build (ldg : Pdg.loop_dg) : t =
  let comps = Depgraph.sccs ldg.Pdg.ldg in
  let node_scc = Hashtbl.create 64 in
  let sccs =
    List.mapi
      (fun sid members ->
        List.iter (fun n -> Hashtbl.replace node_scc n sid) members;
        { sid; members; carried_internal = false })
      comps
  in
  let by_id = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace by_id s.sid s) sccs;
  let dag_succ = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace dag_succ s.sid []) sccs;
  List.iter
    (fun (e : Depgraph.edge) ->
      match
        (Hashtbl.find_opt node_scc e.Depgraph.esrc, Hashtbl.find_opt node_scc e.Depgraph.edst)
      with
      | Some a, Some b when a = b ->
        if e.Depgraph.loop_carried then (Hashtbl.find by_id a).carried_internal <- true
      | Some a, Some b ->
        let cur = Hashtbl.find dag_succ a in
        if not (List.mem b cur) then Hashtbl.replace dag_succ a (b :: cur)
      | _ -> ())
    (Depgraph.edges ldg.Pdg.ldg);
  { sccs; node_scc; dag_succ; ldg }

let scc_of_inst (t : t) id = Hashtbl.find_opt t.node_scc id

let scc_by_id (t : t) sid = List.find (fun s -> s.sid = sid) t.sccs

let successors (t : t) sid = try Hashtbl.find t.dag_succ sid with Not_found -> []

(** SCCs in topological order (producers before consumers). *)
let topological (t : t) =
  (* Depgraph.sccs returns reverse-topological order; reverse it *)
  List.rev t.sccs

(** Does this SCC carry a dependence across iterations (either a
    loop-carried edge between members, or a loop-carried self edge)? *)
let is_carried (s : scc) = s.carried_internal

(** Total number of member instructions. *)
let size (s : scc) = List.length s.members
