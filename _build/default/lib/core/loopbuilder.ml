(** The loop builder (LB, §2.2).

    The loop-granularity analogue of LLVM's IRBuilder: a set of loop
    transformations that modify, create, and delete loops — canonicalizing
    (dedicated preheader), hoisting code out of loops (used by LICM),
    translating while-shaped loops to do-while shape (loop rotation),
    peeling, and cloning a loop body into another function (the shared
    machinery of the DOALL/HELIX/DSWP task generation). *)

open Ir

(** Give loop [l] a dedicated preheader (no-op if one exists).  Returns the
    preheader block id. *)
let ensure_preheader (f : Func.t) (l : Loopnest.loop) : int =
  match Loopnest.preheader f l with
  | Some ph -> ph
  | None ->
    let header = l.Loopnest.header in
    let preds = Func.preds f in
    let outside =
      (try Hashtbl.find preds header with Not_found -> [])
      |> List.filter (fun p -> not (Loopnest.contains l p))
    in
    let ph = Builder.add_block f ~label:"preheader" in
    (* steal the outside-incoming phi entries *)
    List.iter
      (fun (i : Instr.inst) ->
        match i.Instr.op with
        | Instr.Phi incs ->
          let from_outside, from_inside =
            List.partition (fun (p, _) -> List.mem p outside) incs
          in
          (match from_outside with
          | [] -> ()
          | [ (_, v) ] -> i.Instr.op <- Instr.Phi ((ph.Func.bid, v) :: from_inside)
          | multi ->
            (* merge multiple outside values with a phi in the preheader *)
            let merged =
              Builder.insert_front f ph.Func.bid (Instr.Phi multi) i.Instr.ty
            in
            i.Instr.op <-
              Instr.Phi ((ph.Func.bid, Instr.Reg merged.Instr.id) :: from_inside))
        | _ -> ())
      (Func.insts_of_block f header);
    List.iter
      (fun p -> Builder.redirect f p ~old_succ:header ~new_succ:ph.Func.bid)
      outside;
    ignore (Builder.set_term f ph.Func.bid (Instr.Br header));
    (* entry function header: if the loop header was the function entry,
       the preheader must become the entry block *)
    if Func.entry f = header then
      f.Func.blocks <-
        ph.Func.bid :: List.filter (fun b -> b <> ph.Func.bid) f.Func.blocks;
    ph.Func.bid

(** Hoist instruction [id] to the end of the loop's preheader (creating
    one if needed). *)
let hoist (f : Func.t) (l : Loopnest.loop) id =
  let ph = ensure_preheader f l in
  match Func.terminator f ph with
  | Some t -> Builder.move_before f id ~before:t.Instr.id
  | None -> Builder.move_to_end f id ~bid:ph

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

(** Create a fresh counted while-shaped loop in [f]: control flows
    [before] -> preheader -> header(iv phi, test) -> body -> latch ->
    header, exiting to a fresh block that is returned along with the body
    block and the IV's value.  [fill] populates the body given the IV.
    This is LB's "create loops" capability; task generators and tests use
    it to synthesize iteration skeletons. *)
let build_counted_loop (f : Func.t) ~(after : int) ~(start : Instr.value)
    ~(bound : Instr.value) ~(step : int64)
    ~(fill : body:Func.block -> iv:Instr.value -> unit) =
  let ph = Builder.add_block f ~label:"lb.preheader" in
  let header = Builder.add_block f ~label:"lb.header" in
  let body = Builder.add_block f ~label:"lb.body" in
  let latch = Builder.add_block f ~label:"lb.latch" in
  let exit = Builder.add_block f ~label:"lb.exit" in
  (* [after] must not be terminated yet; the caller terminates [exit] *)
  ignore (Builder.set_term f after (Instr.Br ph.Func.bid));
  ignore (Builder.set_term f ph.Func.bid (Instr.Br header.Func.bid));
  let phi = Builder.insert_front f header.Func.bid (Instr.Phi []) Ty.I64 in
  let cmp =
    Builder.add f header.Func.bid
      (Instr.Icmp ((if step > 0L then Instr.Slt else Instr.Sgt), Instr.Reg phi.Instr.id, bound))
      Ty.I64
  in
  ignore
    (Builder.set_term f header.Func.bid
       (Instr.Cbr (Instr.Reg cmp.Instr.id, body.Func.bid, exit.Func.bid)));
  fill ~body ~iv:(Instr.Reg phi.Instr.id);
  ignore (Builder.set_term f body.Func.bid (Instr.Br latch.Func.bid));
  let next =
    Builder.add f latch.Func.bid
      (Instr.Bin (Instr.Add, Instr.Reg phi.Instr.id, Instr.Cint step))
      Ty.I64
  in
  ignore (Builder.set_term f latch.Func.bid (Instr.Br header.Func.bid));
  phi.Instr.op <-
    Instr.Phi [ (ph.Func.bid, start); (latch.Func.bid, Instr.Reg next.Instr.id) ];
  (exit, body, Instr.Reg phi.Instr.id)

(* ------------------------------------------------------------------ *)
(* Cloning                                                             *)
(* ------------------------------------------------------------------ *)

(** Clone the [blocks] of [src] into [dst] (which may be [src] itself).

    - [map_value] rewrites operands defined {e outside} the cloned region
      (live-ins): arguments, registers from outside, globals;
    - [entry_from] is the dst block to use as the incoming-block of phis
      whose original incoming block lies outside the region;
    - [exit_to] maps branch targets outside the region to dst blocks.

    Returns [(block_map, inst_map)]. *)
let clone_blocks ~(src : Func.t) ~(blocks : int list) ~(dst : Func.t)
    ~(map_value : Instr.value -> Instr.value) ~(entry_from : int)
    ~(exit_to : int -> int) : (int, int) Hashtbl.t * (int, int) Hashtbl.t =
  let bmap = Hashtbl.create 16 and imap = Hashtbl.create 64 in
  let ordered = List.filter (fun b -> List.mem b blocks) src.Func.blocks in
  List.iter
    (fun bid ->
      let b = Func.block src bid in
      let nb = Builder.add_block dst ~label:(b.Func.label ^ ".clone") in
      Hashtbl.replace bmap bid nb.Func.bid)
    ordered;
  (* first pass: create clone instructions (ops fixed up in pass two) *)
  List.iter
    (fun bid ->
      let b = Func.block src bid in
      let nb = Func.block dst (Hashtbl.find bmap bid) in
      List.iter
        (fun iid ->
          let i = Func.inst src iid in
          let ni = Builder.mk_inst dst i.Instr.op i.Instr.ty in
          ni.Instr.parent <- nb.Func.bid;
          nb.Func.insts <- nb.Func.insts @ [ ni.Instr.id ];
          Hashtbl.replace imap iid ni.Instr.id)
        b.Func.insts)
    ordered;
  (* second pass: remap operands, phi predecessors, and branch targets *)
  List.iter
    (fun bid ->
      let nb = Func.block dst (Hashtbl.find bmap bid) in
      List.iter
        (fun nid ->
          let ni = Func.inst dst nid in
          let remap_v v =
            match v with
            | Instr.Reg r -> (
              match Hashtbl.find_opt imap r with
              | Some r' -> Instr.Reg r'
              | None -> map_value v)
            | Instr.Arg _ -> map_value v
            | Instr.Glob _ -> map_value v
            | v -> v
          in
          ni.Instr.op <-
            (match ni.Instr.op with
            | Instr.Phi incs ->
              Instr.Phi
                (List.map
                   (fun (p, v) ->
                     let p' =
                       match Hashtbl.find_opt bmap p with
                       | Some p' -> p'
                       | None -> entry_from
                     in
                     (p', remap_v v))
                   incs)
            | Instr.Br s ->
              Instr.Br
                (match Hashtbl.find_opt bmap s with Some s' -> s' | None -> exit_to s)
            | Instr.Cbr (c, a, b) ->
              let f s =
                match Hashtbl.find_opt bmap s with Some s' -> s' | None -> exit_to s
              in
              Instr.Cbr (remap_v c, f a, f b)
            | op -> Instr.map_operands remap_v op))
        nb.Func.insts)
    ordered;
  (bmap, imap)

(* ------------------------------------------------------------------ *)
(* Rotation: while -> do-while                                         *)
(* ------------------------------------------------------------------ *)

(** Can the loop be rotated?  The header must be the unique exiting block,
    its straight-line computation must be side-effect free (it gets
    cloned), and a dedicated preheader must be creatable. *)
let can_rotate (f : Func.t) (ls : Loopstructure.t) =
  Loopstructure.shape ls = Loopstructure.While_shape
  && (match Loopstructure.exiting_blocks ls with
     | [ h ] -> h = ls.Loopstructure.header
     | _ -> false)
  && List.for_all
       (fun (i : Instr.inst) ->
         match i.Instr.op with
         | Instr.Phi _ | Instr.Cbr _ -> true
         | Instr.Store _ | Instr.Call _ | Instr.Alloca _ | Instr.Load _ -> false
         | op -> not (Instr.is_terminator_op op))
       (Func.insts_of_block f ls.Loopstructure.header)

(** Rotate a while-shaped loop into do-while shape: the exit test moves
    into the preheader (zero-trip guard) and into each latch.  Returns
    [true] on success.  Faithful to LLVM's LoopRotate in effect, built in
    a few dozen lines on LB's cloning machinery. *)
let rotate (f : Func.t) (ls : Loopstructure.t) : bool =
  if not (can_rotate f ls) then false
  else begin
    let l = ls.Loopstructure.raw in
    let header = ls.Loopstructure.header in
    let ph = ensure_preheader f l in
    let hblock = Func.block f header in
    let phis, rest =
      List.partition
        (fun id -> match (Func.inst f id).Instr.op with Instr.Phi _ -> true | _ -> false)
        hblock.Func.insts
    in
    let term_id = List.nth rest (List.length rest - 1) in
    let term = Func.inst f term_id in
    let cond, body_succ, exit_succ =
      match term.Instr.op with
      | Instr.Cbr (c, a, b) ->
        if Loopstructure.contains ls a then (c, a, b) else (c, b, a)
      | _ -> assert false
    in
    let comp = List.filter (fun id -> id <> term_id) rest in
    (* substitution for a given incoming edge: phi -> its incoming value *)
    let clone_into ~bid ~(phi_sub : int -> Instr.value option) =
      (* returns value map for header computation ids *)
      let map : (int, Instr.value) Hashtbl.t = Hashtbl.create 8 in
      let subst v =
        match v with
        | Instr.Reg r -> (
          match Hashtbl.find_opt map r with
          | Some v' -> v'
          | None -> (
            match phi_sub r with Some v' -> v' | None -> v))
        | v -> v
      in
      List.iter
        (fun id ->
          let i = Func.inst f id in
          let ni = Builder.add f bid (Instr.map_operands subst i.Instr.op) i.Instr.ty in
          Hashtbl.replace map id (Instr.Reg ni.Instr.id))
        comp;
      (map, subst)
    in
    let phi_incs id =
      match (Func.inst f id).Instr.op with
      | Instr.Phi incs -> incs
      | _ -> assert false
    in
    (* guard clone in the preheader *)
    let guard_map, guard_subst =
      clone_into ~bid:ph
        ~phi_sub:(fun r ->
          if List.mem r phis then List.assoc_opt ph (phi_incs r) else None)
    in
    let guard_cond = guard_subst cond in
    Builder.replace_term f ph (Instr.Cbr (guard_cond, body_succ, exit_succ));
    (* latch clones *)
    let latch_data =
      List.map
        (fun latch ->
          let lmap, lsubst =
            clone_into ~bid:latch
              ~phi_sub:(fun r ->
                if List.mem r phis then List.assoc_opt latch (phi_incs r) else None)
          in
          let lcond = lsubst cond in
          Builder.replace_term f latch (Instr.Cbr (lcond, body_succ, exit_succ));
          (latch, lmap, lsubst))
        ls.Loopstructure.latches
    in
    (* move phis into the new header (the body successor); incoming blocks
       change: preheader keeps its value, latch values stay *)
    List.iter
      (fun pid ->
        let p = Func.inst f pid in
        let incs = phi_incs pid in
        let bb = Func.block f header in
        bb.Func.insts <- List.filter (fun x -> x <> pid) bb.Func.insts;
        let nb = Func.block f body_succ in
        nb.Func.insts <- pid :: nb.Func.insts;
        p.Instr.parent <- body_succ;
        ignore incs)
      phis;
    (* merge values for header computations used elsewhere, and for phis
       used outside the loop: build exit phis in the exit block *)
    let all_new_preds = ph :: List.map (fun (l, _, _) -> l) latch_data in
    let exit_phi_for ~ty ~value_for_pred =
      let phi =
        Builder.insert_front f exit_succ
          (Instr.Phi (List.map (fun p -> (p, value_for_pred p)) all_new_preds))
          ty
      in
      Instr.Reg phi.Instr.id
    in
    (* replace external uses of each header computation *)
    List.iter
      (fun cid ->
        let c = Func.inst f cid in
        let users = Func.users f cid in
        let outside_users =
          List.filter
            (fun (u : Instr.inst) ->
              u.Instr.id <> cid && u.Instr.id <> term_id
              && not
                   (u.Instr.parent = exit_succ
                   && match u.Instr.op with Instr.Phi _ -> true | _ -> false))
            users
        in
        if outside_users <> [] then begin
          (* in-loop users read the latch/guard value via a header phi *)
          let hphi =
            Builder.insert_front f body_succ
              (Instr.Phi
                 ((ph, Hashtbl.find guard_map cid)
                 :: List.map
                      (fun (latch, lmap, _) -> (latch, Hashtbl.find lmap cid))
                      latch_data))
              c.Instr.ty
          in
          let ephi =
            lazy
              (exit_phi_for ~ty:c.Instr.ty ~value_for_pred:(fun p ->
                   if p = ph then Hashtbl.find guard_map cid
                   else
                     let _, lmap, _ =
                       List.find (fun (l, _, _) -> l = p) latch_data
                     in
                     Hashtbl.find lmap cid))
          in
          List.iter
            (fun (u : Instr.inst) ->
              let inside = Loopstructure.contains ls u.Instr.parent in
              let by =
                if inside then Instr.Reg hphi.Instr.id else Lazy.force ephi
              in
              u.Instr.op <-
                Instr.map_operands
                  (function Instr.Reg r when r = cid -> by | v -> v)
                  u.Instr.op)
            outside_users
        end)
      comp;
    (* phis used outside the loop get exit merges of their per-edge values *)
    List.iter
      (fun pid ->
        let p = Func.inst f pid in
        let incs = phi_incs pid in
        let outside_users =
          List.filter
            (fun (u : Instr.inst) ->
              (not (Loopstructure.contains ls u.Instr.parent))
              && not
                   (u.Instr.parent = exit_succ
                   && match u.Instr.op with Instr.Phi _ -> true | _ -> false))
            (Func.users f pid)
        in
        if outside_users <> [] then begin
          let ephi =
            exit_phi_for ~ty:p.Instr.ty ~value_for_pred:(fun pr ->
                if pr = ph then List.assoc ph incs
                else List.assoc pr incs)
          in
          List.iter
            (fun (u : Instr.inst) ->
              u.Instr.op <-
                Instr.map_operands
                  (function Instr.Reg r when r = pid -> ephi | v -> v)
                  u.Instr.op)
            outside_users
        end)
      phis;
    (* pre-existing exit phis: replace the incoming-from-header entry with
       one entry per new predecessor *)
    List.iter
      (fun (i : Instr.inst) ->
        match i.Instr.op with
        | Instr.Phi incs when List.mem_assoc header incs ->
          let v = List.assoc header incs in
          let others = List.filter (fun (p, _) -> p <> header) incs in
          let subst_for p v =
            match v with
            | Instr.Reg r when List.mem r comp ->
              if p = ph then Hashtbl.find guard_map r
              else
                let _, lmap, _ = List.find (fun (l, _, _) -> l = p) latch_data in
                Hashtbl.find lmap r
            | Instr.Reg r when List.mem r phis ->
              if p = ph then List.assoc ph (phi_incs r) else List.assoc p (phi_incs r)
            | v -> v
          in
          i.Instr.op <-
            Instr.Phi (others @ List.map (fun p -> (p, subst_for p v)) all_new_preds)
        | _ -> ())
      (Func.insts_of_block f exit_succ);
    (* the old header is now bypassed: erase it *)
    let hb = Func.block f header in
    List.iter (fun id -> Hashtbl.remove f.Func.body id) hb.Func.insts;
    Hashtbl.remove f.Func.blks header;
    f.Func.blocks <- List.filter (fun b -> b <> header) f.Func.blocks;
    ignore (Cfg.prune_unreachable f);
    ignore (Builder.simplify_phis f);
    true
  end

(* ------------------------------------------------------------------ *)
(* Peeling                                                             *)
(* ------------------------------------------------------------------ *)

(** Peel the first iteration of loop [ls]: the preheader branches into a
    clone of the loop body whose back edges land on the original header.
    Used by noelle-rm-lc-dependences to break dependences that only occur
    on the first iteration.  Returns [true] on success. *)
let peel_first (f : Func.t) (ls : Loopstructure.t) : bool =
  let l = ls.Loopstructure.raw in
  let header = ls.Loopstructure.header in
  (* restrict to loops with a single exit target whose predecessors are all
     loop blocks, so the SSA live-out patch-up below is well-defined *)
  let exit_ok =
    match Loopstructure.single_exit ls with
    | None -> false
    | Some t ->
      let preds = Func.preds f in
      List.for_all
        (fun p -> Loopstructure.contains ls p)
        (try Hashtbl.find preds t with Not_found -> [])
  in
  if not exit_ok then false
  else begin
  let ph = ensure_preheader f l in
  (* clone loop blocks inside the same function *)
  let bmap, imap =
    clone_blocks ~src:f ~blocks:ls.Loopstructure.blocks ~dst:f
      ~map_value:(fun v -> v)
      ~entry_from:ph
      ~exit_to:(fun s -> s)
  in
  let cheader = Hashtbl.find bmap header in
  (* the clone's back edges must go to the original header *)
  Hashtbl.iter
    (fun _src cbid ->
      match Func.terminator f cbid with
      | Some t ->
        t.Instr.op <-
          (match t.Instr.op with
          | Instr.Br s when s = cheader -> Instr.Br header
          | Instr.Cbr (c, a, b) ->
            Instr.Cbr
              (c, (if a = cheader then header else a),
               if b = cheader then header else b)
          | op -> op)
      | None -> ())
    bmap;
  (* clone header phis: on first entry they take the preheader values; we
     record the substitution so later patch-ups can map through it *)
  let phi_repl : (int, Instr.value) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (i : Instr.inst) ->
      match i.Instr.op with
      | Instr.Phi incs when i.Instr.parent = cheader ->
        (* the clone executes only once, entered from the preheader *)
        (match List.assoc_opt ph incs with
        | Some v ->
          Hashtbl.replace phi_repl i.Instr.id v;
          Builder.replace_uses f ~old:i.Instr.id ~by:v;
          Builder.remove f i.Instr.id
        | None -> ())
      | _ -> ())
    (Func.insts_of_block f cheader);
  (* original header phis: incoming from preheader becomes incoming from
     the clone's latches with the cloned update values *)
  List.iter
    (fun (i : Instr.inst) ->
      match i.Instr.op with
      | Instr.Phi incs when i.Instr.parent = header ->
        let updated =
          List.concat_map
            (fun (p, v) ->
              if p = ph then
                (* one entry per cloned latch *)
                List.filter_map
                  (fun latch ->
                    let clatch = Hashtbl.find bmap latch in
                    match List.assoc_opt latch incs with
                    | Some lv ->
                      let lv' =
                        match lv with
                        | Instr.Reg r -> (
                          match Hashtbl.find_opt imap r with
                          | Some r' -> Instr.Reg r'
                          | None -> lv)
                        | lv -> lv
                      in
                      Some (clatch, lv')
                    | None -> None)
                  ls.Loopstructure.latches
              else [ (p, v) ])
            incs
        in
        i.Instr.op <- Instr.Phi updated
      | _ -> ())
    (Func.insts_of_block f header);
  (* exit-target phis: add one incoming per cloned exiting predecessor *)
  let exit_t = Option.get (Loopstructure.single_exit ls) in
  let remap_v v =
    match v with
    | Instr.Reg r -> (
      match Hashtbl.find_opt imap r with
      | Some r' -> (
        match Hashtbl.find_opt phi_repl r' with
        | Some v' -> v'  (* cloned header phi collapsed to its initial value *)
        | None -> Instr.Reg r')
      | None -> v)
    | v -> v
  in
  List.iter
    (fun (i : Instr.inst) ->
      match i.Instr.op with
      | Instr.Phi incs ->
        let extra =
          List.filter_map
            (fun (p, v) ->
              match Hashtbl.find_opt bmap p with
              | Some p' -> Some (p', remap_v v)
              | None -> None)
            incs
        in
        i.Instr.op <- Instr.Phi (incs @ extra)
      | _ -> ())
    (Func.insts_of_block f exit_t);
  (* SSA live-outs used beyond the exit block without a merge phi: create
     merge phis at the exit target *)
  let exiting = Loopstructure.exiting_blocks ls in
  Func.iter_insts
    (fun (d : Instr.inst) ->
      if Loopstructure.contains ls d.Instr.parent then begin
        let outside_users =
          List.filter
            (fun (u : Instr.inst) ->
              (not (Loopstructure.contains ls u.Instr.parent))
              && not
                   (match u.Instr.op with
                   | Instr.Phi _ -> u.Instr.parent = exit_t
                   | _ -> false)
              && not (Hashtbl.mem bmap u.Instr.parent))
            (Func.users f d.Instr.id)
        in
        if outside_users <> [] then begin
          let phi =
            Builder.insert_front f exit_t
              (Instr.Phi
                 (List.map (fun p -> (p, Instr.Reg d.Instr.id)) exiting
                 @ List.map
                     (fun p -> (Hashtbl.find bmap p, remap_v (Instr.Reg d.Instr.id)))
                     exiting))
              d.Instr.ty
          in
          List.iter
            (fun (u : Instr.inst) ->
              u.Instr.op <-
                Instr.map_operands
                  (function
                    | Instr.Reg r when r = d.Instr.id -> Instr.Reg phi.Instr.id
                    | v -> v)
                  u.Instr.op)
            outside_users
        end
      end)
    f;
  (* the preheader now branches to the peeled copy *)
  Builder.redirect f ph ~old_succ:header ~new_succ:cheader;
  ignore (Cfg.prune_unreachable f);
  ignore (Builder.simplify_phis f);
  true
  end
