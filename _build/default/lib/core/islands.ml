(** Islands (ISL, §2.2): identify the disconnected sub-graphs of a graph.

    Generic over the node type; used on the call graph (dead-function
    elimination of whole unreachable components) and on the PDG
    (Time-Squeezer analyses independent compare clusters per island). *)

(** Connected components of an undirected graph given by [nodes] and a
    [neighbors] function.  Deterministic: components and their members are
    in first-seen order. *)
let find : 'a. nodes:'a list -> neighbors:('a -> 'a list) -> 'a list list =
 fun ~nodes ~neighbors ->
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun n ->
      if not (Hashtbl.mem seen n) then begin
        let comp = ref [] in
        let stack = ref [ n ] in
        while !stack <> [] do
          let x = List.hd !stack in
          stack := List.tl !stack;
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.replace seen x ();
            comp := x :: !comp;
            List.iter (fun y -> if not (Hashtbl.mem seen y) then stack := y :: !stack)
              (neighbors x)
          end
        done;
        out := List.rev !comp :: !out
      end)
    nodes;
  List.rev !out

(** Islands of a {!Depgraph} (edges treated as undirected). *)
let of_depgraph (g : Depgraph.t) : int list list =
  let neighbors n =
    List.map (fun (e : Depgraph.edge) -> e.Depgraph.edst) (Depgraph.succs g n)
    @ List.map (fun (e : Depgraph.edge) -> e.Depgraph.esrc) (Depgraph.preds g n)
  in
  find ~nodes:(List.rev g.Depgraph.nodes) ~neighbors
