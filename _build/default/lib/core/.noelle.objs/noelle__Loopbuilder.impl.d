lib/core/loopbuilder.ml: Builder Cfg Func Hashtbl Instr Ir Lazy List Loopnest Loopstructure Option Ty
