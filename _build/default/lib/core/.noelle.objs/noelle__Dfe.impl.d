lib/core/dfe.ml: Alias Andersen Cfg Func Hashtbl Instr Int Ir Irmod List Option Queue Set
