lib/core/forest.ml: Hashtbl Ir List
