lib/core/callgraph.ml: Andersen Func Hashtbl Instr Ir Irmod Islands List
