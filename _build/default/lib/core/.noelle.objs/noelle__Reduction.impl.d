lib/core/reduction.ml: Builder Func Instr Int64 Ir List Loopnest Loopstructure Ty
