lib/core/loopstructure.ml: Func Instr Ir List Loopnest
