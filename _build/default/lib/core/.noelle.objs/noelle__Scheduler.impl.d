lib/core/scheduler.ml: Builder Depgraph Dom Func Hashtbl Instr Ir List Loopstructure Option Pdg
