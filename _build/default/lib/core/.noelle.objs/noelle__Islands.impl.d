lib/core/islands.ml: Depgraph Hashtbl List
