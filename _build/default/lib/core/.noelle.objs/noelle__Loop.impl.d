lib/core/loop.ml: Ascc Indvars Invariants Ir Lazy Loopstructure Pdg Sccdag
