lib/core/invariants_llvm.ml: Alias Andersen Func Instr Ir Irmod List Loopstructure
