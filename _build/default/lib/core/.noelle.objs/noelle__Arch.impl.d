lib/core/arch.ml: Array Ir Option Printf
