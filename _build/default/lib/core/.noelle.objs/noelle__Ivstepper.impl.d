lib/core/ivstepper.ml: Builder Func Instr Ir List Printf Ty
