lib/core/pdg.ml: Alias Depgraph Dom Func Hashtbl Instr Ir Irmod List Loopnest Meta Option Printf Scev String
