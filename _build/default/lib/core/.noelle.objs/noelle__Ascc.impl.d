lib/core/ascc.ml: Depgraph Indvars Ir List Loopstructure Option Pdg Reduction Sccdag
