lib/core/indvars_llvm.ml: Func Instr Ir List Loopnest Loopstructure
