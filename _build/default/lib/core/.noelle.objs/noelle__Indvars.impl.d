lib/core/indvars.ml: Func Instr Int64 Ir List Loopnest Loopstructure Option Sccdag Scev
