lib/core/sccdag.ml: Depgraph Hashtbl List Pdg
