lib/core/profiler.ml: Buffer Func Hashtbl Instr Int64 Interp Ir Irmod List Loopstructure Meta Printf
