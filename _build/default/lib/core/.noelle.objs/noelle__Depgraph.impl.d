lib/core/depgraph.ml: Hashtbl List
