lib/core/env.ml: Builder Func Instr Int64 Ir List Ty
