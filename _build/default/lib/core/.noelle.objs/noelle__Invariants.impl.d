lib/core/invariants.ml: Alias Depgraph Func Hashtbl Instr Ir List Loopstructure Pdg Scev
