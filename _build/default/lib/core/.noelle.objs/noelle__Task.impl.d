lib/core/task.ml: Builder Env Func Instr Ir Irmod Ty
