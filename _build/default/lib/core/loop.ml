(** The canonical loop abstraction (L, §2.2).

    L bundles the loop structure (LS) with the loop dependence graph
    (computed from the PDG), the SCCDAG and its augmented attributes, the
    loop's induction variables, invariants, and reductions.  Everything is
    computed lazily, preserving NOELLE's demand-driven cost model: a pass
    that only touches [ls] never pays for the dependence graph. *)

type t = {
  ls : Loopstructure.t;
  pdg : Pdg.t;
  ldg : Pdg.loop_dg Lazy.t;
  dag : Sccdag.t Lazy.t;
  ascc : Ascc.t Lazy.t;
  invariants : Invariants.t Lazy.t;
}

let make (pdg : Pdg.t) (ls : Loopstructure.t) : t =
  let ldg = lazy (Pdg.loop_dg pdg ls.Loopstructure.raw) in
  let dag = lazy (Sccdag.build (Lazy.force ldg)) in
  let ascc = lazy (Ascc.build ls (Lazy.force dag)) in
  let invariants = lazy (Invariants.compute pdg ls) in
  { ls; pdg; ldg; dag; ascc; invariants }

let structure (t : t) = t.ls
let dep_graph (t : t) = Lazy.force t.ldg
let sccdag (t : t) = Lazy.force t.dag
let ascc (t : t) = Lazy.force t.ascc
let invariants (t : t) = Lazy.force t.invariants
let induction_variables (t : t) = (ascc t).Ascc.ivs
let reductions (t : t) = (ascc t).Ascc.reductions
let governing_iv (t : t) = Indvars.governing_iv (induction_variables t)
let live_ins (t : t) = Pdg.live_ins t.pdg t.ls.Loopstructure.raw
let live_outs (t : t) = Pdg.live_outs t.pdg t.ls.Loopstructure.raw

(** Stable identifier for metadata and reporting. *)
let id (t : t) = Ir.Ids.loop_key t.ls.Loopstructure.f t.ls.Loopstructure.raw
