(** The templated dependence graph (§2.2 "PDG").

    NOELLE's dependence graph is a generic directed graph of dependences
    between nodes; what a node is gets decided at instantiation time (the
    PDG instantiates it with instructions; the call graph could instantiate
    it with functions).  Nodes are integers here and payloads live with the
    client, which is what OCaml gives us in place of C++ templates.

    Each node is {e internal} (belongs to the code region the graph was
    built for) or {e external} (represents a live-in/live-out of that
    region); each edge records whether it is a control or data dependence,
    the data-dependence sort (RAW/WAW/WAR), whether it is a register or a
    memory dependence, whether it is must or may (apparent vs actual), and
    whether it is loop-carried. *)

type sort = RAW | WAW | WAR

type kind =
  | Control
  | Register of sort          (** SSA def-use; always RAW in practice *)
  | Memory of sort

type edge = {
  esrc : int;
  edst : int;
  kind : kind;
  must : bool;                         (** proved to hold vs may *)
  mutable loop_carried : bool;         (** meaningful in loop graphs *)
}

type t = {
  mutable nodes : int list;
  internal : (int, bool) Hashtbl.t;    (** node -> is internal *)
  succ : (int, edge list) Hashtbl.t;
  pred : (int, edge list) Hashtbl.t;
  mutable nedges : int;
}

let create () =
  {
    nodes = [];
    internal = Hashtbl.create 64;
    succ = Hashtbl.create 64;
    pred = Hashtbl.create 64;
    nedges = 0;
  }

let add_node (g : t) ?(internal = true) n =
  if not (Hashtbl.mem g.internal n) then begin
    g.nodes <- n :: g.nodes;
    Hashtbl.replace g.internal n internal
  end

let mem (g : t) n = Hashtbl.mem g.internal n
let is_internal (g : t) n = try Hashtbl.find g.internal n with Not_found -> false

let add_edge (g : t) ?(must = false) ?(loop_carried = false) ~kind esrc edst =
  add_node g esrc;
  add_node g edst;
  let e = { esrc; edst; kind; must; loop_carried } in
  Hashtbl.replace g.succ esrc (e :: (try Hashtbl.find g.succ esrc with Not_found -> []));
  Hashtbl.replace g.pred edst (e :: (try Hashtbl.find g.pred edst with Not_found -> []));
  g.nedges <- g.nedges + 1;
  e

let succs (g : t) n = try Hashtbl.find g.succ n with Not_found -> []
let preds (g : t) n = try Hashtbl.find g.pred n with Not_found -> []

(** All edges, in an unspecified but deterministic order. *)
let edges (g : t) =
  List.concat_map (fun n -> List.rev (succs g n)) (List.rev g.nodes)

let internal_nodes (g : t) = List.rev (List.filter (is_internal g) g.nodes)
let external_nodes (g : t) =
  List.rev (List.filter (fun n -> not (is_internal g n)) g.nodes)

let num_nodes (g : t) = List.length g.nodes
let num_edges (g : t) = g.nedges

(** Dependences into internal node [n] from internal nodes only. *)
let internal_preds (g : t) n =
  List.filter (fun e -> is_internal g e.esrc) (preds g n)

(** Restrict [g] to the nodes satisfying [keep]; nodes not kept but adjacent
    to kept nodes become external (the live-in/live-out sets of the region,
    computed exactly as the paper describes for loop and function dependence
    graphs). *)
let slice (g : t) ~keep =
  let out = create () in
  List.iter (fun n -> if keep n then add_node out ~internal:true n) g.nodes;
  List.iter
    (fun n ->
      if keep n then
        List.iter
          (fun e ->
            if keep e.edst then
              ignore
                (add_edge out ~must:e.must ~loop_carried:e.loop_carried
                   ~kind:e.kind e.esrc e.edst)
            else begin
              add_node out ~internal:false e.edst;
              ignore
                (add_edge out ~must:e.must ~loop_carried:e.loop_carried
                   ~kind:e.kind e.esrc e.edst)
            end)
          (succs g n)
      else
        List.iter
          (fun e ->
            if keep e.edst then begin
              add_node out ~internal:false n;
              ignore
                (add_edge out ~must:e.must ~loop_carried:e.loop_carried
                   ~kind:e.kind n e.edst)
            end)
          (succs g n))
    g.nodes;
  out

(** Remove every edge that fails [keep_edge] (used by loop-centric
    refinement to drop disproved dependences). *)
let filter_edges (g : t) ~keep_edge =
  let rebuild tbl pick =
    Hashtbl.iter
      (fun n es -> Hashtbl.replace tbl n (List.filter keep_edge es))
      (Hashtbl.copy tbl);
    ignore pick
  in
  rebuild g.succ `Src;
  rebuild g.pred `Dst;
  g.nedges <- List.length (edges g)

(** Strongly connected components (Tarjan), internal nodes only.
    Returned in reverse topological order (callees of the DAG first). *)
let sccs (g : t) =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun e ->
        let w = e.edst in
        if is_internal g w then begin
          if not (Hashtbl.mem index w) then begin
            strongconnect w;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w))
        end)
      (succs g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let comp = ref [] in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          comp := w :: !comp;
          if w = v then continue_ := false
        | [] -> continue_ := false
      done;
      out := !comp :: !out
    end
  in
  List.iter
    (fun v -> if is_internal g v && not (Hashtbl.mem index v) then strongconnect v)
    (List.rev g.nodes);
  List.rev !out

(** Does the graph contain a cycle among internal nodes passing through
    [n]?  (Self edges count.) *)
let in_cycle (g : t) n =
  List.exists (fun e -> e.edst = n) (succs g n)
  || List.exists (fun comp -> List.length comp > 1 && List.mem n comp) (sccs g)

let kind_to_string = function
  | Control -> "ctrl"
  | Register RAW -> "reg-raw"
  | Register WAW -> "reg-waw"
  | Register WAR -> "reg-war"
  | Memory RAW -> "mem-raw"
  | Memory WAW -> "mem-waw"
  | Memory WAR -> "mem-war"

let kind_of_string = function
  | "ctrl" -> Some Control
  | "reg-raw" -> Some (Register RAW)
  | "reg-waw" -> Some (Register WAW)
  | "reg-war" -> Some (Register WAR)
  | "mem-raw" -> Some (Memory RAW)
  | "mem-waw" -> Some (Memory WAW)
  | "mem-war" -> Some (Memory WAR)
  | _ -> None
