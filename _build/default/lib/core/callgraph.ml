(** The complete program call graph (CG, §2.2).

    Unlike LLVM's call graph, NOELLE's is {e complete}: indirect calls are
    resolved to their possible callees using the points-to analysis that
    powers the PDG, and every edge is tagged must (proved) or may.
    Completeness is what lets DeadFunctionElimination treat a missing edge
    as proof that one function can never invoke another. *)

open Ir

type edge = {
  caller : string;
  callee : string;
  must : bool;                     (** direct call = must; resolved indirect = may *)
  sites : int list;                (** call instruction ids in the caller *)
}

type t = {
  m : Irmod.t;
  edges : edge list;
  callees_of : (string, edge list) Hashtbl.t;
  callers_of : (string, edge list) Hashtbl.t;
  unresolved : (string * int) list;
      (** call sites whose callees could not be bounded *)
}

(** Build the complete call graph; [pts] supplies indirect-call resolution
    (typically the Andersen result used by the PDG). *)
let build ?(pts : Andersen.t option) (m : Irmod.t) : t =
  let acc : (string * string * bool, int list) Hashtbl.t = Hashtbl.create 64 in
  let unresolved = ref [] in
  let add caller callee must site =
    let key = (caller, callee, must) in
    let cur = try Hashtbl.find acc key with Not_found -> [] in
    Hashtbl.replace acc key (site :: cur)
  in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_insts
        (fun i ->
          match i.Instr.op with
          | Instr.Call (Instr.Glob g, _) -> add f.Func.fname g true i.Instr.id
          | Instr.Call (v, _) -> (
            match pts with
            | None -> unresolved := (f.Func.fname, i.Instr.id) :: !unresolved
            | Some r ->
              let s = Andersen.pts_of_value r f v in
              if Andersen.ObjSet.is_empty s || Andersen.ObjSet.mem Andersen.Oextern s
              then unresolved := (f.Func.fname, i.Instr.id) :: !unresolved
              else
                Andersen.ObjSet.iter
                  (function
                    | Andersen.Ofun g -> add f.Func.fname g false i.Instr.id
                    | _ ->
                      unresolved := (f.Func.fname, i.Instr.id) :: !unresolved)
                  s)
          | _ -> ())
        f)
    (Irmod.defined_functions m);
  let edges =
    Hashtbl.fold
      (fun (caller, callee, must) sites acc ->
        { caller; callee; must; sites = List.sort compare sites } :: acc)
      acc []
    |> List.sort (fun a b -> compare (a.caller, a.callee) (b.caller, b.callee))
  in
  let callees_of = Hashtbl.create 16 and callers_of = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace callees_of e.caller
        (e :: (try Hashtbl.find callees_of e.caller with Not_found -> []));
      Hashtbl.replace callers_of e.callee
        (e :: (try Hashtbl.find callers_of e.callee with Not_found -> [])))
    edges;
  { m; edges; callees_of; callers_of; unresolved = List.rev !unresolved }

let callees (t : t) fname =
  try Hashtbl.find t.callees_of fname with Not_found -> []

let callers (t : t) fname =
  try Hashtbl.find t.callers_of fname with Not_found -> []

(** Functions transitively reachable from the given roots.  When the graph
    has unresolved call sites, every address-taken function is added as a
    root (soundness fallback). *)
let reachable (t : t) ~roots =
  let address_taken =
    if t.unresolved = [] then []
    else
      (* a function whose address appears as a non-callee operand *)
      List.concat_map
        (fun (f : Func.t) ->
          Func.fold_insts
            (fun acc i ->
              let ops =
                match i.Instr.op with
                | Instr.Call (_, args) -> args
                | op -> Instr.operands op
              in
              List.fold_left
                (fun acc v ->
                  match v with
                  | Instr.Glob g when Irmod.func_opt t.m g <> None -> g :: acc
                  | _ -> acc)
                acc ops)
            [] f)
        (Irmod.defined_functions t.m)
  in
  let seen = Hashtbl.create 16 in
  let rec visit fn =
    if not (Hashtbl.mem seen fn) then begin
      Hashtbl.replace seen fn ();
      List.iter (fun e -> visit e.callee) (callees t fn)
    end
  in
  List.iter visit roots;
  List.iter visit address_taken;
  seen

(** Disconnected islands of the call graph (ignoring edge direction). *)
let islands (t : t) : string list list =
  let adj = Hashtbl.create 16 in
  let names = List.map (fun f -> f.Func.fname) (Irmod.defined_functions t.m) in
  List.iter (fun n -> Hashtbl.replace adj n []) names;
  List.iter
    (fun e ->
      if Hashtbl.mem adj e.caller && Hashtbl.mem adj e.callee then begin
        Hashtbl.replace adj e.caller (e.callee :: Hashtbl.find adj e.caller);
        Hashtbl.replace adj e.callee (e.caller :: Hashtbl.find adj e.callee)
      end)
    t.edges;
  Islands.find ~nodes:names ~neighbors:(fun n -> try Hashtbl.find adj n with Not_found -> [])
