(** The benchmark corpus.

    Mini-C kernels modelled on the three suites the paper evaluates
    (MiBench, PARSEC 3.0, SPEC CPU2017).  Each kernel reproduces the
    dependence/parallelism {e pattern class} its namesake contributes to
    the paper's figures:

    - regular data-parallel loops (DOALL candidates): bitcount, susan,
      basicmath, blackscholes, streamcluster, lbm, namd, x264-sad;
    - self-contained recurrences + heavy parallel work (HELIX candidates):
      swaptions (Monte-Carlo LCG), canneal;
    - memory-fed recurrences + downstream work (DSWP candidates): ferret,
      dedup, adpcm-pipeline;
    - genuinely sequential kernels (nothing should win): crc32, sha,
      xz-rle, mcf (pointer chasing);
    - irregular/control-heavy (SPEC-like, small wins at best): dijkstra,
      stringsearch, qsort;
    - tool-specific drivers: montecarlo (PRVJeeves), histogram
      (Perspective: apparent-but-never-actual conflicts), calls+tables
      (DeadFunctionElimination).

    All data is generated deterministically inside each program; float
    reductions accumulate integer-valued floats so parallel reassociation
    is exact and outputs stay bit-identical. *)

type suite = MiBench | Parsec | Spec

let suite_name = function MiBench -> "MiBench" | Parsec -> "PARSEC" | Spec -> "SPEC"

type kernel = {
  kname : string;
  suite : suite;
  src : string;
  fuel : int;       (** interpreter instruction budget *)
}

(* ------------------------------------------------------------------ *)
(* MiBench-like                                                        *)
(* ------------------------------------------------------------------ *)

let bitcount =
  {
    kname = "bitcount";
    suite = MiBench;
    fuel = 30_000_000;
    src =
      {|
int main() {
  int n = 30000;
  int total = 0;
  for (int i = 0; i < n; i++) {
    int x = i * 2654435761;
    int c = 0;
    for (int b = 0; b < 16; b++) {
      c += (x >> b) & 1;
    }
    total += c;
  }
  print(total);
  return 0;
}
|};
  }

let crc32 =
  {
    kname = "crc32";
    suite = MiBench;
    fuel = 30_000_000;
    src =
      {|
int data[20000];
int crc_byte(int crc, int byte) {
  crc = crc ^ byte;
  int k = 0;
  do {
    int low = crc & 1;
    crc = (crc >> 1) & 9223372036854775807;
    if (low) { crc = crc ^ 79764919; }
    k++;
  } while (k < 8);
  return crc;
}
int main() {
  int n = 20000;
  for (int i = 0; i < n; i++) data[i] = (i * 31 + 7) & 255;
  int crc = -1;
  for (int i = 0; i < n; i++) {
    crc = crc_byte(crc, data[i]);
  }
  print(crc);
  return 0;
}
|};
  }

let sha_lite =
  {
    kname = "sha";
    suite = MiBench;
    fuel = 30_000_000;
    src =
      {|
int msg[16384];
int main() {
  int n = 16384;
  for (int i = 0; i < n; i++) msg[i] = (i * 131 + 89) & 65535;
  int h0 = 1732584193;
  int h1 = 4023233417;
  for (int i = 0; i < n; i++) {
    int w = msg[i];
    int t = ((h0 << 5) | ((h0 >> 27) & 31)) + h1 + w + 1518500249;
    h1 = h0;
    h0 = t & 4294967295;
  }
  print(h0 + h1);
  return 0;
}
|};
  }

let dijkstra_lite =
  {
    kname = "dijkstra";
    suite = MiBench;
    fuel = 60_000_000;
    src =
      {|
int adj[40000];
int dist[200];
int done[200];
int find_min(int *d, int *fin, int n) {
  int best = -1;
  int bestd = 1000000000;
  for (int i = 0; i < n; i++) {
    if (!fin[i] && d[i] < bestd) { bestd = d[i]; best = i; }
  }
  return best;
}
void relax(int *graph, int *d, int u, int n) {
  int du = d[u];
  for (int j = 0; j < n; j++) {
    int nd = du + graph[u*200+j];
    if (nd < d[j]) { d[j] = nd; }
  }
}
int main() {
  int n = 200;
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      adj[i*200+j] = ((i * 7 + j * 13) % 97) + 1;
    }
  }
  for (int i = 0; i < n; i++) { dist[i] = 1000000000; done[i] = 0; }
  dist[0] = 0;
  for (int it = 0; it < n; it++) {
    int best = find_min(dist, done, n);
    if (best >= 0) {
      done[best] = 1;
      relax(adj, dist, best, n);
    }
  }
  int sum = 0;
  for (int i = 0; i < n; i++) sum += dist[i];
  print(sum);
  return 0;
}
|};
  }

let stringsearch =
  {
    kname = "stringsearch";
    suite = MiBench;
    fuel = 60_000_000;
    src =
      {|
int text[60000];
int pat[8];
int match_at(int *t, int *p, int i, int plen) {
  for (int j = 0; j < plen; j++) {
    if (t[i+j] != p[j]) { return 0; }
  }
  return 1;
}
int main() {
  int n = 60000;
  int plen = 8;
  for (int i = 0; i < n; i++) text[i] = (i * 1103515245 + 12345) & 31;
  for (int j = 0; j < plen; j++) pat[j] = (j * 5 + 3) & 31;
  int found = 0;
  for (int i = 0; i < n - 8; i++) {
    found += match_at(text, pat, i, plen);
  }
  print(found);
  return 0;
}
|};
  }

let susan_lite =
  {
    kname = "susan";
    suite = MiBench;
    fuel = 80_000_000;
    src =
      {|
int img[40000];
int out[40000];
int main() {
  int w = 200;
  int h = 200;
  for (int i = 0; i < w*h; i++) img[i] = (i * 2654435761) & 255;
  for (int y = 1; y < h - 1; y++) {
    for (int x = 1; x < w - 1; x++) {
      int c = img[y*200+x];
      int s = 0;
      s += img[(y-1)*200+x-1]; s += img[(y-1)*200+x]; s += img[(y-1)*200+x+1];
      s += img[y*200+x-1];     s += 4 * c;            s += img[y*200+x+1];
      s += img[(y+1)*200+x-1]; s += img[(y+1)*200+x]; s += img[(y+1)*200+x+1];
      out[y*200+x] = s / 12;
    }
  }
  int sum = 0;
  for (int i = 0; i < w*h; i++) sum += out[i];
  print(sum);
  return 0;
}
|};
  }

let basicmath =
  {
    kname = "basicmath";
    suite = MiBench;
    fuel = 60_000_000;
    src =
      {|
float roots[1];
int main() {
  int n = 20000;
  float acc = 0.0;
  for (int i = 0; i < n; i++) {
    float a = 1.0 + (float)(i % 97);
    float x = a;
    x = 0.5 * (x + a / x);
    x = 0.5 * (x + a / x);
    x = 0.5 * (x + a / x);
    x = 0.5 * (x + a / x);
    acc += floor(x * 16.0);
  }
  roots[0] = acc;
  print((int)acc);
  return 0;
}
|};
  }

let qsort_lite =
  {
    kname = "qsort";
    suite = MiBench;
    fuel = 60_000_000;
    src =
      {|
int arr[6000];
int stack[256];
void swap(int *a, int i, int j) {
  int t = a[i];
  a[i] = a[j];
  a[j] = t;
}
int partition(int *a, int lo, int hi) {
  int p = a[hi];
  int i = lo - 1;
  for (int j = lo; j < hi; j++) {
    if (a[j] < p) { i++; swap(a, i, j); }
  }
  swap(a, i + 1, hi);
  return i + 1;
}
int main() {
  int n = 6000;
  for (int i = 0; i < n; i++) arr[i] = (i * 1103515245 + 12345) & 65535;
  int top = 0;
  stack[0] = 0;
  stack[1] = n - 1;
  top = 2;
  while (top > 0) {
    int hi = stack[top-1];
    int lo = stack[top-2];
    top -= 2;
    if (lo < hi) {
      int p = partition(arr, lo, hi);
      if (top < 250) {
        stack[top] = lo; stack[top+1] = p - 1; top += 2;
        stack[top] = p + 1; stack[top+1] = hi; top += 2;
      }
    }
  }
  int check = 0;
  for (int i = 0; i < n; i++) check += arr[i] * (i & 7);
  print(check);
  return 0;
}
|};
  }

let adpcm_lite =
  {
    kname = "adpcm";
    suite = MiBench;
    fuel = 30_000_000;
    src =
      {|
int pcm[30000];
int enc[30000];
int main() {
  int n = 30000;
  for (int i = 0; i < n; i++) pcm[i] = ((i * 37) % 255) - 128;
  int pred = 0;
  int step = 4;
  for (int i = 0; i < n; i++) {
    int diff = pcm[i] - pred;
    int code = 0;
    if (diff < 0) { code = 8; diff = -diff; }
    if (diff >= step) { code = code | 4; diff -= step; }
    if (diff >= step / 2) { code = code | 2; }
    enc[i] = code;
    pred = pred + ((code & 7) * step) / 4;
    if (pred > 127) pred = 127;
    if (pred < -128) pred = -128;
    if ((code & 7) >= 4) { step = step * 2; } else { step = step - step / 4; }
    if (step < 4) step = 4;
    if (step > 1024) step = 1024;
  }
  int sum = 0;
  for (int i = 0; i < n; i++) sum += enc[i];
  print(sum);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* PARSEC-like                                                         *)
(* ------------------------------------------------------------------ *)

let blackscholes_lite =
  {
    kname = "blackscholes";
    suite = Parsec;
    fuel = 80_000_000;
    src =
      {|
float prices[1];
int main() {
  int n = 20000;
  float acc = 0.0;
  for (int i = 0; i < n; i++) {
    float s = 90.0 + (float)(i % 21);
    float k = 100.0;
    float t = 0.5 + (float)(i % 5) * 0.25;
    float r = 0.02;
    float v = 0.3;
    float srt = v * sqrt(t);
    float d1 = (log(s / k) + (r + 0.5 * v * v) * t) / srt;
    float d2 = d1 - srt;
    float nd1 = 1.0 / (1.0 + exp(0.0 - 1.702 * d1));
    float nd2 = 1.0 / (1.0 + exp(0.0 - 1.702 * d2));
    float c = s * nd1 - k * exp(0.0 - r * t) * nd2;
    acc += floor(c * 100.0);
  }
  prices[0] = acc;
  print((int)acc);
  return 0;
}
|};
  }

let swaptions_lite =
  {
    kname = "swaptions";
    suite = Parsec;
    fuel = 80_000_000;
    src =
      {|
float result[1];
int main() {
  int n = 20000;
  int seed = 20061204;
  float acc = 0.0;
  for (int i = 0; i < n; i++) {
    seed = seed * 1103515245 + 12345;
    int u = (seed >> 16) & 32767;
    float z = ((float)u / 32768.0) * 2.0 - 1.0;
    float rate = 0.04 + 0.02 * z;
    float df = 1.0;
    for (int t = 0; t < 12; t++) {
      df = df / (1.0 + rate * 0.25);
      rate = rate + z * 0.001;
    }
    float payoff = df * 100.0 - 88.0;
    if (payoff < 0.0) payoff = 0.0;
    acc += floor(payoff * 64.0);
  }
  result[0] = acc;
  print((int)acc);
  return 0;
}
|};
  }

let streamcluster_lite =
  {
    kname = "streamcluster";
    suite = Parsec;
    fuel = 90_000_000;
    src =
      {|
float pts[20000];
float ctr[40];
int main() {
  int n = 2000;
  int dim = 10;
  int k = 4;
  for (int i = 0; i < n*dim; i++) pts[i] = (float)((i * 263 + 71) % 100);
  for (int j = 0; j < k*dim; j++) ctr[j] = (float)((j * 17 + 3) % 100);
  float cost = 0.0;
  for (int i = 0; i < n; i++) {
    float best = 1000000000.0;
    for (int c = 0; c < k; c++) {
      float d = 0.0;
      for (int j = 0; j < dim; j++) {
        float diff = pts[i*10+j] - ctr[c*10+j];
        d += diff * diff;
      }
      if (d < best) best = d;
    }
    cost += floor(best);
  }
  print((int)cost);
  return 0;
}
|};
  }

let fluidanimate_lite =
  {
    kname = "fluidanimate";
    suite = Parsec;
    fuel = 90_000_000;
    src =
      {|
float grid[40000];
float next[40000];
int main() {
  int w = 200;
  int h = 200;
  for (int i = 0; i < w*h; i++) grid[i] = (float)((i * 97 + 13) % 50);
  for (int step = 0; step < 2; step++) {
    for (int y = 1; y < h - 1; y++) {
      for (int x = 1; x < w - 1; x++) {
        float v = grid[y*200+x] * 4.0;
        v += grid[(y-1)*200+x] + grid[(y+1)*200+x];
        v += grid[y*200+x-1] + grid[y*200+x+1];
        next[y*200+x] = floor(v / 8.0);
      }
    }
    for (int y = 1; y < h - 1; y++) {
      for (int x = 1; x < w - 1; x++) {
        grid[y*200+x] = next[y*200+x];
      }
    }
  }
  float sum = 0.0;
  for (int i = 0; i < w*h; i++) sum += grid[i];
  print((int)sum);
  return 0;
}
|};
  }

let ferret_lite =
  {
    kname = "ferret";
    suite = Parsec;
    fuel = 60_000_000;
    src =
      {|
int db[30000];
float scores[30000];
int main() {
  int n = 30000;
  for (int i = 0; i < n; i++) db[i] = (i * 2246822519) & 1048575;
  int h = 5381;
  for (int i = 0; i < n; i++) {
    h = (h * 33 + db[i]) & 1048575;
    float q = (float)h;
    float s = q * 0.001;
    s = s * s + q * 0.0001;
    s = s + s * s * 0.000001;
    s = s * 0.5 + sqrt(s + 1.0);
    s = s + log(s + 2.0) * 0.125;
    s = s * 0.75 + sqrt(s * s + q * 0.5);
    s = s + exp(0.0 - s * 0.001);
    scores[i] = floor(s);
  }
  float total = 0.0;
  for (int i = 0; i < n; i++) total += scores[i];
  print(h);
  print((int)total);
  return 0;
}
|};
  }

let dedup_lite =
  {
    kname = "dedup";
    suite = Parsec;
    fuel = 60_000_000;
    src =
      {|
int stream[40000];
int hashes[40000];
int roll_step(int *s, int i, int roll) {
  return (roll * 256 + s[i]) % 1000003;
}
int main() {
  int n = 40000;
  for (int i = 0; i < n; i++) stream[i] = (i * 1597334677) & 65535;
  int roll = 1;
  for (int i = 0; i < n; i++) {
    roll = roll_step(stream, i, roll);
    int x = roll;
    x = x ^ (x >> 7);
    x = (x * 2654435761) & 2147483647;
    x = x ^ (x >> 13);
    x = (x * 40503) & 2147483647;
    hashes[i] = x & 4095;
  }
  int dups = 0;
  for (int i = 1; i < n; i++) {
    if (hashes[i] == hashes[i-1]) dups++;
  }
  print(roll);
  print(dups);
  return 0;
}
|};
  }

let canneal_lite =
  {
    kname = "canneal";
    suite = Parsec;
    fuel = 60_000_000;
    src =
      {|
int cost_tab[4096];
int swap_delta(int *tab, int idx) {
  return tab[idx] - 105;
}
int main() {
  int n = 30000;
  for (int i = 0; i < 4096; i++) cost_tab[i] = (i * 37) % 211;
  int seed = 17;
  int accepted = 0;
  int cost = 100000;
  for (int i = 0; i < n; i++) {
    seed = seed * 1103515245 + 12345;
    int a = (seed >> 12) & 4095;
    int delta = swap_delta(cost_tab, a);
    if (delta < 0) { cost += delta; accepted++; }
  }
  print(cost);
  print(accepted);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* SPEC-like                                                           *)
(* ------------------------------------------------------------------ *)

let lbm_lite =
  {
    kname = "lbm";
    suite = Spec;
    fuel = 90_000_000;
    src =
      {|
float cells[30000];
float tmp[30000];
int main() {
  int n = 10000;
  for (int i = 0; i < n*3; i++) cells[i] = (float)((i * 53 + 11) % 40);
  for (int t = 0; t < 3; t++) {
    for (int i = 1; i < n - 1; i++) {
      float f0 = cells[i*3];
      float f1 = cells[i*3+1];
      float f2 = cells[i*3+2];
      float rho = f0 + f1 + f2;
      float u = (f1 - f2) / (rho + 1.0);
      tmp[i*3] = floor(f0 + 0.1 * (rho / 3.0 - f0));
      tmp[i*3+1] = floor(f1 + 0.1 * (rho * (1.0 + u) / 3.0 - f1));
      tmp[i*3+2] = floor(f2 + 0.1 * (rho * (1.0 - u) / 3.0 - f2));
    }
    for (int i = 1; i < n - 1; i++) {
      cells[i*3] = tmp[i*3];
      cells[i*3+1] = tmp[i*3+1];
      cells[i*3+2] = tmp[i*3+2];
    }
  }
  float sum = 0.0;
  for (int i = 0; i < n*3; i++) sum += cells[i];
  print((int)sum);
  return 0;
}
|};
  }

let mcf_lite =
  {
    kname = "mcf";
    suite = Spec;
    fuel = 60_000_000;
    src =
      {|
int nxt[30000];
int val[30000];
int main() {
  int n = 30000;
  for (int i = 0; i < n; i++) {
    nxt[i] = (i * 7919 + 13) % n;
    val[i] = (i * 31) & 1023;
  }
  int p = 0;
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum += val[p];
    p = nxt[p];
  }
  print(sum);
  return 0;
}
|};
  }

let namd_lite =
  {
    kname = "namd";
    suite = Spec;
    fuel = 90_000_000;
    src =
      {|
float px[400];
float py[400];
float fx[400];
float fy[400];
int main() {
  int n = 400;
  for (int i = 0; i < n; i++) {
    px[i] = (float)((i * 37) % 100);
    py[i] = (float)((i * 53) % 100);
    fx[i] = 0.0;
    fy[i] = 0.0;
  }
  float energy = 0.0;
  for (int i = 0; i < n; i++) {
    float e = 0.0;
    for (int j = 0; j < n; j++) {
      if (j != i) {
        float dx = px[i] - px[j];
        float dy = py[i] - py[j];
        float r2 = dx * dx + dy * dy + 1.0;
        e += 1000.0 / r2;
      }
    }
    energy += floor(e);
  }
  print((int)energy);
  return 0;
}
|};
  }

let xz_lite =
  {
    kname = "xz";
    suite = Spec;
    fuel = 60_000_000;
    src =
      {|
int input[40000];
int output[80000];
int run_length(int *in, int i, int n) {
  int run = 1;
  while (i + run < n && in[i+run] == in[i] && run < 255) { run++; }
  return run;
}
int main() {
  int n = 40000;
  for (int i = 0; i < n; i++) input[i] = ((i / 97) * 31) & 255;
  int o = 0;
  int i = 0;
  while (i < n) {
    int run = run_length(input, i, n);
    output[o] = run;
    output[o+1] = input[i];
    o += 2;
    i += run;
  }
  int sum = 0;
  for (int k = 0; k < o; k++) sum += output[k] * (k & 15);
  print(o);
  print(sum);
  return 0;
}
|};
  }

let x264_lite =
  {
    kname = "x264";
    suite = Spec;
    fuel = 90_000_000;
    src =
      {|
int frame0[40000];
int frame1[40000];
int main() {
  int w = 200;
  int h = 200;
  for (int i = 0; i < w*h; i++) {
    frame0[i] = (i * 2654435761) & 255;
    frame1[i] = ((i + 3) * 2654435761) & 255;
  }
  int sad_total = 0;
  for (int by = 0; by < 12; by++) {
    for (int bx = 0; bx < 12; bx++) {
      int best = 1000000000;
      for (int dy = 0; dy < 3; dy++) {
        for (int dx = 0; dx < 3; dx++) {
          int sad = 0;
          for (int y = 0; y < 8; y++) {
            for (int x = 0; x < 8; x++) {
              int a = frame0[(by*16+y)*200 + bx*16+x];
              int b = frame1[(by*16+y+dy)*200 + bx*16+x+dx];
              int d = a - b;
              if (d < 0) d = -d;
              sad += d;
            }
          }
          if (sad < best) best = sad;
        }
      }
      sad_total += best;
    }
  }
  print(sad_total);
  return 0;
}
|};
  }

let jpeg_dct =
  {
    kname = "jpeg-dct";
    suite = MiBench;
    fuel = 90_000_000;
    src =
      {|
float blocks[25600];
float coef[64];
int main() {
  int nblocks = 400;
  for (int i = 0; i < nblocks*64; i++) blocks[i] = (float)((i * 13 + 5) % 256);
  for (int i = 0; i < 64; i++) coef[i] = 0.5 + (float)(i % 8) * 0.125;
  float energy = 0.0;
  for (int b = 0; b < nblocks; b++) {
    float e = 0.0;
    for (int u = 0; u < 8; u++) {
      for (int x = 0; x < 8; x++) {
        float s = 0.0;
        for (int k = 0; k < 8; k++) {
          s += blocks[b*64 + x*8 + k] * coef[u*8 + k];
        }
        e += floor(s * coef[x*8 + u]);
      }
    }
    energy += e;
  }
  print((int)energy);
  return 0;
}
|};
  }

let patricia_lite =
  {
    kname = "patricia";
    suite = MiBench;
    fuel = 60_000_000;
    src =
      {|
int main() {
  // binary trie over 12-bit keys; nodes are malloc'd triples
  // [bit, left, right]
  int *root = malloc(3);
  root[0] = 0; root[1] = 0; root[2] = 0;
  int inserted = 0;
  for (int t = 0; t < 3000; t++) {
    int key = (t * 2654435761) & 4095;
    int *node = root;
    int depth = 0;
    while (depth < 12) {
      int bit = (key >> depth) & 1;
      int *slot = (int*)node[1 + bit];
      if ((int)slot == 0) {
        int *leaf = malloc(3);
        leaf[0] = depth + 1; leaf[1] = 0; leaf[2] = 0;
        node[1 + bit] = (int)leaf;
        inserted++;
        depth = 12;
      } else {
        node = slot;
        depth++;
      }
    }
  }
  print(inserted);
  return 0;
}
|};
  }

let gsm_lite =
  {
    kname = "gsm";
    suite = MiBench;
    fuel = 60_000_000;
    src =
      {|
int samples[20000];
int residual[20000];
int main() {
  int n = 20000;
  for (int i = 0; i < n; i++) samples[i] = ((i * 113) % 511) - 255;
  // short-term LPC filter: an order-4 IIR recurrence (sequential)
  int h0 = 0; int h1 = 0; int h2 = 0; int h3 = 0;
  for (int i = 0; i < n; i++) {
    int pred = (h0 * 7 + h1 * 5 + h2 * 3 + h3) / 16;
    int r = samples[i] - pred;
    residual[i] = r;
    h3 = h2; h2 = h1; h1 = h0; h0 = samples[i];
  }
  // quantization energy: data-parallel
  int energy = 0;
  for (int i = 0; i < n; i++) {
    int q = residual[i] >> 2;
    energy += q * q;
  }
  print(energy);
  return 0;
}
|};
  }

let blocksort =
  {
    kname = "blocksort";
    suite = MiBench;
    fuel = 90_000_000;
    src =
      {|
int data[16384];
int out[512];
int tmp[32];
int main() {
  int nblocks = 512;
  for (int i = 0; i < nblocks*32; i++) data[i] = (i * 2654435761) & 8191;
  // each block is copied into the shared scratch buffer, insertion-sorted
  // there, and summarized: the scratch carries apparent loop dependences
  // that memory-object cloning removes
  for (int b = 0; b < nblocks; b++) {
    for (int j = 0; j < 32; j++) tmp[j] = data[b*32 + j];
    for (int j = 1; j < 32; j++) {
      int key = tmp[j];
      int k = j - 1;
      while (k >= 0 && tmp[k] > key) {
        tmp[k+1] = tmp[k];
        k = k - 1;
      }
      tmp[k+1] = key;
    }
    out[b] = tmp[0] * 3 + tmp[31];
  }
  int chk = 0;
  for (int b = 0; b < nblocks; b++) chk += out[b] * (b & 15);
  print(chk);
  return 0;
}
|};
  }

(* ------------------------------------------------------------------ *)
(* Tool-specific drivers                                               *)
(* ------------------------------------------------------------------ *)

let montecarlo =
  {
    kname = "montecarlo";
    suite = Parsec;
    fuel = 60_000_000;
    src =
      {|
int main() {
  srand(42);
  int n = 20000;
  int inside = 0;
  for (int i = 0; i < n; i++) {
    int a = rand() % 1024;
    int b = rand() % 1024;
    if (a * a + b * b < 1048576) inside++;
  }
  print(inside);
  float pi4 = (float)inside / (float)n;
  print((int)(pi4 * 10000.0));
  return 0;
}
|};
  }

let histogram =
  {
    kname = "histogram";
    suite = Spec;
    fuel = 60_000_000;
    src =
      {|
int data[30000];
int hist[30000];
int main() {
  int n = 30000;
  for (int i = 0; i < n; i++) { data[i] = i; hist[i] = 0; }
  for (int i = 0; i < n; i++) {
    int b = data[i];
    hist[b] = hist[b] + 1 + (b & 3);
  }
  int sum = 0;
  for (int i = 0; i < n; i++) sum += hist[i];
  print(sum);
  return 0;
}
|};
  }

let deadcode_driver =
  {
    kname = "deadcalls";
    suite = MiBench;
    fuel = 10_000_000;
    src =
      {|
int helper_used(int x) { return x * 3 + 1; }
int helper_dead1(int x) { int s = 0; for (int i = 0; i < 10; i++) s += x * i; return s; }
int helper_dead2(int x) { return helper_dead1(x) + 7; }
int helper_dead3(int x) { return helper_dead2(x) * helper_dead1(x); }
float fhelper_dead(float x) { return x * 2.5 + sqrt(x); }
int via_ptr(int x) { return x - 4; }
int dead_via_ptr(int x) { return x + 900; }
int dispatch(int x) {
  int* table[2];
  table[0] = (int*)via_ptr;
  table[1] = (int*)via_ptr;
  int idx = x & 1;
  return table[idx](x);
}
int main() {
  int s = 0;
  for (int i = 0; i < 5000; i++) {
    s += helper_used(i);
    s += dispatch(i);
  }
  print(s);
  return 0;
}
|};
  }

(** The full corpus, in a stable order. *)
let all : kernel list =
  [
    bitcount; crc32; sha_lite; dijkstra_lite; stringsearch; susan_lite;
    basicmath; qsort_lite; adpcm_lite; jpeg_dct; patricia_lite; gsm_lite;
    blocksort;
    blackscholes_lite; swaptions_lite; streamcluster_lite; fluidanimate_lite;
    ferret_lite; dedup_lite; canneal_lite;
    lbm_lite; mcf_lite; namd_lite; xz_lite; x264_lite;
    montecarlo; histogram; deadcode_driver;
  ]

let find name = List.find_opt (fun k -> String.equal k.kname name) all

(** Compile a kernel to a fresh verified module. *)
let compile (k : kernel) : Ir.Irmod.t = Minic.Lower.compile ~name:k.kname k.src

let by_suite s = List.filter (fun k -> k.suite = s) all
