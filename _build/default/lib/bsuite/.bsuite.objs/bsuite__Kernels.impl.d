lib/bsuite/kernels.ml: Ir List Minic String
