lib/bsuite/generator.ml: Buffer Int64 List Printf String
