(** Random Mini-C program generator — the reproduction of NOELLE's testing
    infrastructure (§2.4).

    The paper ships hundreds of micro C programs "to illustrate corner
    cases or common code patterns found in popular benchmark suites", and
    lets users surgically generate tests that stress a specific aspect of a
    specific transformation.  This module generates such micro programs
    deterministically from a seed: nested counted loops, array stores with
    affine or data-dependent indexing, scalar accumulators, recurrences,
    conditionals, helper functions — all constructed so the program is safe
    by design (indices masked into bounds, divisors forced nonzero, loops
    counted), which lets the fuzz suite require clean execution and
    bit-identical outputs across every transformation.

    Knobs ({!cfg}) select which patterns appear, so a test can stress e.g.
    only reductions, or only pointer-helper calls, as §2.4 describes. *)

type cfg = {
  max_depth : int;          (** loop nesting depth (1 or 2 is plenty) *)
  max_stmts : int;          (** statements per block *)
  allow_ifs : bool;
  allow_recurrences : bool; (** scalar recurrences (sequential SCCs) *)
  allow_helpers : bool;     (** calls to generated pure helpers *)
  allow_indirect : bool;    (** data-dependent (histogram-style) indexing *)
  arrays : int;             (** number of global arrays *)
  array_size : int;
  iters : int;              (** trip count of generated loops *)
}

let default_cfg =
  {
    max_depth = 2;
    max_stmts = 5;
    allow_ifs = true;
    allow_recurrences = true;
    allow_helpers = true;
    allow_indirect = true;
    arrays = 3;
    array_size = 64;
    iters = 20;
  }

(* deterministic generator state *)
type g = { mutable seed : int64; buf : Buffer.t; cfg : cfg; mutable fresh : int }

let next (g : g) bound =
  g.seed <- Int64.add (Int64.mul g.seed 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.rem (Int64.shift_right_logical g.seed 33) (Int64.of_int bound))

let pick (g : g) l = List.nth l (next g (List.length l))
let flip (g : g) = next g 2 = 0
let say (g : g) fmt = Printf.ksprintf (fun s -> Buffer.add_string g.buf s) fmt

let fresh_var (g : g) p =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" p g.fresh

(* expressions over the in-scope integer variables; total by construction *)
let rec expr (g : g) (vars : string list) depth : string =
  if depth = 0 || next g 3 = 0 then
    if vars <> [] && flip g then pick g vars
    else string_of_int (next g 100)
  else
    match next g 8 with
    | 0 -> Printf.sprintf "(%s + %s)" (expr g vars (depth - 1)) (expr g vars (depth - 1))
    | 1 -> Printf.sprintf "(%s - %s)" (expr g vars (depth - 1)) (expr g vars (depth - 1))
    | 2 -> Printf.sprintf "(%s * %s)" (expr g vars (depth - 1)) (string_of_int (1 + next g 9))
    | 3 -> Printf.sprintf "(%s & %s)" (expr g vars (depth - 1)) (string_of_int (next g 1024))
    | 4 -> Printf.sprintf "(%s ^ %s)" (expr g vars (depth - 1)) (expr g vars (depth - 1))
    | 5 ->
      (* division kept total by or-ing 1 into the divisor *)
      Printf.sprintf "(%s / ((%s & 15) | 1))" (expr g vars (depth - 1))
        (expr g vars (depth - 1))
    | 6 -> Printf.sprintf "(%s >> %s)" (expr g vars (depth - 1)) (string_of_int (next g 8))
    | _ ->
      Printf.sprintf "(%s %s %s ? %s : %s)" (expr g vars (depth - 1))
        (pick g [ "<"; "<="; "=="; "!=" ])
        (expr g vars (depth - 1)) (expr g vars (depth - 1)) (expr g vars (depth - 1))

(* an always-in-bounds index expression *)
let index (g : g) vars =
  Printf.sprintf "((%s) & %d)" (expr g vars 1) (g.cfg.array_size - 1)

let array_name i = Printf.sprintf "ga%d" i

let stmt (g : g) ~indent ~vars ~accs ~depth =
  let pad = String.make indent ' ' in
  match next g (if g.cfg.allow_ifs && depth > 0 then 6 else 5) with
  | 0 ->
    (* array store *)
    let a = array_name (next g g.cfg.arrays) in
    say g "%s%s[%s] = %s;\n" pad a (index g vars) (expr g vars 2)
  | 1 when accs <> [] ->
    (* accumulate *)
    let acc = pick g accs in
    let op = pick g [ "+="; "^=" ] in
    say g "%s%s %s %s;\n" pad acc op (expr g vars 2)
  | 1 -> say g "%s;\n" pad
  | 2 ->
    (* fresh local *)
    let v = fresh_var g "t" in
    say g "%sint %s = %s;\n" pad v (expr g vars 2);
    ignore v
  | 3 when g.cfg.allow_indirect ->
    (* histogram-style data-dependent store *)
    let a = array_name (next g g.cfg.arrays) in
    let b = array_name (next g g.cfg.arrays) in
    say g "%s%s[(%s[%s]) & %d] += 1;\n" pad a b (index g vars) (g.cfg.array_size - 1)
  | 3 ->
    let a = array_name (next g g.cfg.arrays) in
    say g "%s%s[%s] += %s;\n" pad a (index g vars) (expr g vars 1)
  | 4 when g.cfg.allow_helpers ->
    let acc = if accs <> [] then pick g accs else "0" in
    if accs <> [] then
      say g "%s%s += helper(%s, %s);\n" pad acc (expr g vars 1) (expr g vars 1)
    else say g "%s;\n" pad
  | _ ->
    (* conditional *)
    say g "%sif (%s %s %s) {\n" pad (expr g vars 1)
      (pick g [ "<"; ">"; "==" ])
      (expr g vars 1);
    let a = array_name (next g g.cfg.arrays) in
    say g "%s  %s[%s] = %s;\n" pad a (index g vars) (expr g vars 1);
    say g "%s}\n" pad

let rec loop (g : g) ~indent ~vars ~accs ~depth =
  let pad = String.make indent ' ' in
  let iv = fresh_var g "i" in
  (match next g 3 with
  | 0 ->
    say g "%sfor (int %s = 0; %s < %d; %s++) {\n" pad iv iv g.cfg.iters iv
  | 1 ->
    say g "%sfor (int %s = %d; %s > 0; %s -= 2) {\n" pad iv (2 * g.cfg.iters) iv iv
  | _ ->
    (* while shape written out longhand *)
    say g "%sint %s = 0;\n" pad iv;
    say g "%swhile (%s < %d) {\n" pad iv g.cfg.iters);
  let vars' = iv :: vars in
  (* optional scalar recurrence carried by this loop *)
  let rec_var =
    if g.cfg.allow_recurrences && flip g then begin
      let r = pick g accs in
      say g "%s  %s = (%s * 17 + %s) & 4095;\n" pad r r iv;
      Some r
    end
    else None
  in
  ignore rec_var;
  let n = 1 + next g g.cfg.max_stmts in
  for _ = 1 to n do
    if depth < g.cfg.max_depth && next g 4 = 0 then
      loop g ~indent:(indent + 2) ~vars:vars' ~accs ~depth:(depth + 1)
    else stmt g ~indent:(indent + 2) ~vars:vars' ~accs ~depth
  done;
  (match Buffer.contents g.buf with
  | s when String.length s > 5 && String.sub s (String.length s - 2) 2 = "{\n" ->
    (* never leave an empty loop body *)
    say g "%s  %s[0] += 1;\n" pad (array_name 0)
  | _ -> ());
  (* close the loop; the while form needs its manual increment *)
  if String.length iv > 0 && iv.[0] = 'i' then ();
  say g "%s}\n" pad

(* the while-longhand needs the increment inside; handle by always using a
   structured emitter instead: see [loop] — the while case increments via a
   trailing statement appended before the close brace *)

(** Generate a complete program from [seed]. *)
let program ?(cfg = default_cfg) (seed : int) : string =
  let g = { seed = Int64.of_int (seed * 2 + 1); buf = Buffer.create 1024; cfg; fresh = 0 } in
  for i = 0 to cfg.arrays - 1 do
    say g "int %s[%d];\n" (array_name i) cfg.array_size
  done;
  if cfg.allow_helpers then
    say g "int helper(int a, int b) { return (a * 3 + b) & 2047; }\n";
  say g "int main() {\n";
  (* init arrays deterministically *)
  say g "  for (int z = 0; z < %d; z++) {\n" cfg.array_size;
  for i = 0 to cfg.arrays - 1 do
    say g "    %s[z] = (z * %d + %d) & 255;\n" (array_name i) (7 + i) (3 * i)
  done;
  say g "  }\n";
  (* accumulators *)
  let accs = [ "s0"; "s1"; "s2" ] in
  List.iteri (fun i a -> say g "  int %s = %d;\n" a i) accs;
  (* a few top-level loops *)
  let nloops = 1 + next g 3 in
  for _ = 1 to nloops do
    loop g ~indent:2 ~vars:[] ~accs ~depth:1
  done;
  (* observable output: accumulators + array checksums *)
  List.iter (fun a -> say g "  print(%s);\n" a) accs;
  say g "  int chk = 0;\n";
  say g "  for (int z = 0; z < %d; z++) {\n" cfg.array_size;
  for i = 0 to cfg.arrays - 1 do
    say g "    chk += %s[z] * (z + %d);\n" (array_name i) (i + 1)
  done;
  say g "  }\n";
  say g "  print(chk);\n";
  say g "  return 0;\n}\n";
  Buffer.contents g.buf

(** Fix-up for while-longhand loops: [loop] writes `while (i < N) {` but
    the increment statement must exist or the loop never terminates; we
    post-process by ensuring every while-longhand body increments its
    variable just before the closing brace. *)
let program ?cfg seed =
  let src = program ?cfg seed in
  (* insert "iN += 1;" before the matching close of each while (iN < ...) *)
  let lines = String.split_on_char '\n' src in
  let out = Buffer.create (String.length src) in
  let stack = ref [] in
  List.iter
    (fun line ->
      let t = String.trim line in
      let is_open = String.length t > 0 && t.[String.length t - 1] = '{' in
      (if is_open then
         let tag =
           if String.length t > 6 && String.sub t 0 6 = "while " then begin
             (* extract the variable name between '(' and ' <' *)
             match (String.index_opt t '(', String.index_opt t '<') with
             | Some a, Some b when b > a + 1 ->
               Some (String.trim (String.sub t (a + 1) (b - a - 1)))
             | _ -> None
           end
           else None
         in
         stack := tag :: !stack);
      if t = "}" then begin
        (match !stack with
        | Some v :: _ ->
          let indent = String.length line - 1 in
          Buffer.add_string out (String.make (indent + 1) ' ');
          Buffer.add_string out (v ^ " += 1;\n")
        | _ -> ());
        stack := (match !stack with _ :: r -> r | [] -> [])
      end;
      Buffer.add_string out line;
      Buffer.add_char out '\n')
    lines;
  Buffer.contents out
