(** Mutation API for the IR.

    All structural edits to functions go through this module so that block
    instruction lists, parent pointers and phi incoming lists stay
    consistent.  It plays the role of LLVM's IRBuilder plus the handful of
    low-level CFG update utilities passes need. *)

open Instr

(** [add_block f ~label] appends a fresh empty block to [f]. *)
let add_block (f : Func.t) ~label =
  let bid = Func.fresh_id f in
  let lbl = if Func.find_label f label = None then label
    else Printf.sprintf "%s.%d" label bid in
  let b = { Func.bid; label = lbl; insts = [] } in
  Hashtbl.replace f.Func.blks bid b;
  f.Func.blocks <- f.Func.blocks @ [ bid ];
  b

(** Create an instruction record owned by [f] without inserting it. *)
let mk_inst (f : Func.t) op ty =
  let id = Func.fresh_id f in
  let i = { id; op; ty; parent = -1 } in
  Hashtbl.replace f.Func.body id i;
  i

(** Append an instruction at the end of block [bid] and return its value.
    If the block is already terminated the instruction goes just before the
    terminator. *)
let add (f : Func.t) bid op ty =
  let i = mk_inst f op ty in
  i.parent <- bid;
  let b = Func.block f bid in
  (match List.rev b.insts with
  | last :: _ when Instr.is_terminator (Func.inst f last) ->
    let rec ins = function
      | [ t ] -> [ i.id; t ]
      | x :: rest -> x :: ins rest
      | [] -> [ i.id ]
    in
    b.insts <- ins b.insts
  | _ -> b.insts <- b.insts @ [ i.id ]);
  i

(** Append a terminator to block [bid]; fails if already terminated. *)
let set_term (f : Func.t) bid op =
  assert (Instr.is_terminator_op op);
  (match Func.terminator f bid with
  | Some t ->
    invalid_arg
      (Printf.sprintf "Builder.set_term: block %d already terminated (inst %d)" bid t.id)
  | None -> ());
  let i = mk_inst f op Ty.Void in
  i.parent <- bid;
  let b = Func.block f bid in
  b.insts <- b.insts @ [ i.id ];
  i

(** Replace the terminator of [bid] (or install one if missing). *)
let replace_term (f : Func.t) bid op =
  assert (Instr.is_terminator_op op);
  let b = Func.block f bid in
  (match Func.terminator f bid with
  | Some t ->
    b.insts <- List.filter (fun id -> id <> t.id) b.insts;
    Hashtbl.remove f.Func.body t.id
  | None -> ());
  ignore (set_term f bid op)

(** Insert a new instruction immediately before instruction [before]. *)
let insert_before (f : Func.t) ~before op ty =
  let anchor = Func.inst f before in
  let i = mk_inst f op ty in
  i.parent <- anchor.parent;
  let b = Func.block f anchor.parent in
  let rec ins = function
    | x :: rest when x = before -> i.id :: x :: rest
    | x :: rest -> x :: ins rest
    | [] -> [ i.id ]
  in
  b.insts <- ins b.insts;
  i

(** Insert a new instruction at the front of block [bid] (phi position). *)
let insert_front (f : Func.t) bid op ty =
  let i = mk_inst f op ty in
  i.parent <- bid;
  let b = Func.block f bid in
  b.insts <- i.id :: b.insts;
  i

(** Detach instruction [id] from its block and delete it.  The caller must
    ensure it has no remaining users. *)
let remove (f : Func.t) id =
  let i = Func.inst f id in
  if i.parent >= 0 then begin
    let b = Func.block f i.parent in
    b.insts <- List.filter (fun x -> x <> id) b.insts
  end;
  Hashtbl.remove f.Func.body id

(** Replace every use of SSA register [old] with value [by], everywhere in
    [f]. *)
let replace_uses (f : Func.t) ~old ~by =
  Func.iter_insts
    (fun i ->
      i.op <-
        Instr.map_operands (function Reg r when r = old -> by | v -> v) i.op)
    f

(** Move instruction [id] so it becomes the last non-terminator of block
    [bid]. *)
let move_to_end (f : Func.t) id ~bid =
  let i = Func.inst f id in
  let src = Func.block f i.parent in
  src.insts <- List.filter (fun x -> x <> id) src.insts;
  i.parent <- bid;
  let b = Func.block f bid in
  (match List.rev b.insts with
  | last :: _ when Instr.is_terminator (Func.inst f last) ->
    let rec ins = function
      | [ t ] -> [ id; t ]
      | x :: rest -> x :: ins rest
      | [] -> [ id ]
    in
    b.insts <- ins b.insts
  | _ -> b.insts <- b.insts @ [ id ])

(** Move instruction [id] immediately before instruction [before] (possibly
    in a different block). *)
let move_before (f : Func.t) id ~before =
  let i = Func.inst f id in
  let anchor = Func.inst f before in
  let src = Func.block f i.parent in
  src.insts <- List.filter (fun x -> x <> id) src.insts;
  i.parent <- anchor.parent;
  let b = Func.block f anchor.parent in
  let rec ins = function
    | x :: rest when x = before -> id :: x :: rest
    | x :: rest -> x :: ins rest
    | [] -> [ id ]
  in
  b.insts <- ins b.insts

(** In every phi of block [bid], rewrite incoming edges from [old_pred] to
    come from [new_pred] instead. *)
let rewrite_phi_pred (f : Func.t) bid ~old_pred ~new_pred =
  List.iter
    (fun i ->
      match i.op with
      | Phi incs ->
        i.op <- Phi (List.map (fun (p, v) -> if p = old_pred then (new_pred, v) else (p, v)) incs)
      | _ -> ())
    (Func.insts_of_block f bid)

(** Drop the incoming edge from [pred] in every phi of [bid]. *)
let remove_phi_incoming (f : Func.t) bid ~pred =
  List.iter
    (fun i ->
      match i.op with
      | Phi incs -> i.op <- Phi (List.filter (fun (p, _) -> p <> pred) incs)
      | _ -> ())
    (Func.insts_of_block f bid)

(** Redirect the successor [old_succ] of block [bid]'s terminator to
    [new_succ]. *)
let redirect (f : Func.t) bid ~old_succ ~new_succ =
  match Func.terminator f bid with
  | None -> ()
  | Some t ->
    t.op <-
      (match t.op with
      | Br b when b = old_succ -> Br new_succ
      | Cbr (v, a, b) ->
        Cbr (v, (if a = old_succ then new_succ else a),
             if b = old_succ then new_succ else b)
      | op -> op)

(** Split block [bid] before instruction [at]: instructions from [at] to the
    terminator move into a fresh block; [bid] falls through with a [Br].
    Phis in successors are updated to the new block.  Returns the new block. *)
let split_block (f : Func.t) bid ~at ~label =
  let b = Func.block f bid in
  let rec cut acc = function
    | x :: rest when x = at -> (List.rev acc, x :: rest)
    | x :: rest -> cut (x :: acc) rest
    | [] -> (List.rev acc, [])
  in
  let before, after = cut [] b.insts in
  let nb = add_block f ~label in
  b.insts <- before;
  nb.insts <- after;
  List.iter (fun id -> (Func.inst f id).parent <- nb.bid) after;
  (* successors' phis must now name the new block *)
  List.iter
    (fun s -> rewrite_phi_pred f s ~old_pred:bid ~new_pred:nb.bid)
    (Func.successors f nb.bid);
  ignore (set_term f bid (Br nb.bid));
  nb

(** Delete block [bid] (must be unreachable: no predecessors). *)
let erase_block (f : Func.t) bid =
  let b = Func.block f bid in
  List.iter (fun s -> remove_phi_incoming f s ~pred:bid) (Func.successors f bid);
  List.iter (fun id -> Hashtbl.remove f.Func.body id) b.insts;
  Hashtbl.remove f.Func.blks bid;
  f.Func.blocks <- List.filter (fun x -> x <> bid) f.Func.blocks

(** Deep-copy a function under a new name.  Returns the clone. *)
let clone_func (f : Func.t) ~name =
  let g =
    Func.create ~name
      ~params:(Array.to_list f.Func.params)
      ~ret:f.Func.ret
  in
  g.Func.next_id <- f.Func.next_id;
  g.Func.blocks <- f.Func.blocks;
  Hashtbl.iter
    (fun id (i : inst) ->
      Hashtbl.replace g.Func.body id { i with op = i.op })
    f.Func.body;
  Hashtbl.iter
    (fun id (b : Func.block) ->
      Hashtbl.replace g.Func.blks id { b with insts = b.insts })
    f.Func.blks;
  g

(** Simplify trivial phis ([Phi [(p, v)]] or all-same-value phis) away.
    Returns the number of phis removed.  Used after CFG surgery. *)
let simplify_phis (f : Func.t) =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let to_remove = ref [] in
    Func.iter_insts
      (fun i ->
        match i.op with
        | Phi [] -> ()
        | Phi incs -> (
          (* self-references do not count: phi [v, self, v] == v *)
          let others =
            List.filter
              (fun (_, v) -> not (Instr.value_equal v (Reg i.id)))
              incs
          in
          match others with
          | (_, v0) :: rest
            when List.for_all (fun (_, v) -> Instr.value_equal v v0) rest ->
            to_remove := (i.id, v0) :: !to_remove
          | _ -> ())
        | _ -> ())
      f;
    List.iter
      (fun (id, v) ->
        replace_uses f ~old:id ~by:v;
        remove f id;
        incr removed;
        changed := true)
      !to_remove
  done;
  !removed

(** Remove phis that are only used by other dead phis (mem2reg can leave
    closed cycles of dead phis rotating a dead value around a loop nest).
    Returns the number removed. *)
let dce_phis (f : Func.t) =
  let is_phi id =
    match Func.inst_opt f id with
    | Some { op = Phi _; _ } -> true
    | _ -> false
  in
  (* a phi is live if some non-phi uses it, or a live phi uses it *)
  let live = Hashtbl.create 32 in
  let work = Queue.create () in
  Func.iter_insts
    (fun i ->
      match i.op with
      | Phi _ -> ()
      | op ->
        List.iter
          (function
            | Reg r when is_phi r && not (Hashtbl.mem live r) ->
              Hashtbl.replace live r ();
              Queue.add r work
            | _ -> ())
          (Instr.operands op))
    f;
  while not (Queue.is_empty work) do
    let p = Queue.pop work in
    match (Func.inst f p).op with
    | Phi incs ->
      List.iter
        (fun (_, v) ->
          match v with
          | Reg r when is_phi r && not (Hashtbl.mem live r) ->
            Hashtbl.replace live r ();
            Queue.add r work
          | _ -> ())
        incs
    | _ -> ()
  done;
  let dead =
    Func.fold_insts
      (fun acc i ->
        match i.op with
        | Phi _ when not (Hashtbl.mem live i.id) -> i.id :: acc
        | _ -> acc)
      [] f
  in
  (* dead phis may reference each other: clear operands first *)
  List.iter (fun id -> (Func.inst f id).op <- Phi [] ) dead;
  List.iter (fun id -> remove f id) dead;
  List.length dead

(** Remove instructions with no users and no side effects.  Returns the
    number removed. *)
let dce (f : Func.t) =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Hashtbl.create 64 in
    Func.iter_insts
      (fun i ->
        List.iter
          (function Reg r -> Hashtbl.replace used r () | _ -> ())
          (Instr.operands i.op))
      f;
    let dead =
      Func.fold_insts
        (fun acc i ->
          let side_effecting =
            match i.op with
            | Store _ | Call _ | Br _ | Cbr _ | Ret _ | Unreachable | Alloca _ -> true
            | _ -> false
          in
          if (not side_effecting) && not (Hashtbl.mem used i.id) then i.id :: acc
          else acc)
        [] f
    in
    List.iter (fun id -> remove f id; incr removed; changed := true) dead
  done;
  !removed
