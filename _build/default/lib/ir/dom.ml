(** Dominator and postdominator trees (Cooper-Harvey-Kennedy).

    NOELLE re-implements LLVM's dominator abstraction with caller-controlled
    lifetime (LLVM function-pass results are invalidated behind a module
    pass's back, §2.2 "Other abstractions").  Our trees are plain immutable
    values, so that property holds by construction. *)

type t = {
  idom : (int, int) Hashtbl.t;  (** node -> immediate dominator; root maps to itself *)
  rpo : int list;               (** reverse postorder used for the computation *)
  root : int;
}

(** Generic CHK fixpoint over an arbitrary graph. *)
let compute_generic ~(succs : int -> int list) ~(entry : int) ~(nodes : int list) =
  ignore nodes;
  (* reverse postorder over succs *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem visited b) then begin
      Hashtbl.replace visited b ();
      List.iter dfs (succs b);
      order := b :: !order
    end
  in
  dfs entry;
  let rpo = !order in
  let num = Hashtbl.create 16 in
  List.iteri (fun i b -> Hashtbl.replace num b i) rpo;
  let preds = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (b :: cur))
        (succs b))
    rpo;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom entry entry;
  let intersect a b =
    let rec walk a b =
      if a = b then a
      else if Hashtbl.find num a > Hashtbl.find num b then walk (Hashtbl.find idom a) b
      else walk a (Hashtbl.find idom b)
    in
    walk a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let ps =
            (try Hashtbl.find preds b with Not_found -> [])
            |> List.filter (fun p -> Hashtbl.mem idom p)
          in
          match ps with
          | [] -> ()
          | p0 :: rest ->
            let ni = List.fold_left intersect p0 rest in
            if Hashtbl.find_opt idom b <> Some ni then begin
              Hashtbl.replace idom b ni;
              changed := true
            end
        end)
      rpo
  done;
  { idom; rpo; root = entry }

(** Dominator tree of [f]. *)
let compute (f : Func.t) =
  compute_generic
    ~succs:(fun b -> Func.successors f b)
    ~entry:(Func.entry f) ~nodes:f.Func.blocks

(** Virtual exit node used by the postdominator tree when the function has
    multiple (or zero) exits. *)
let virtual_exit = -1

(** Postdominator tree of [f]: dominators of the reverse CFG rooted at a
    virtual exit that all [Ret]/[Unreachable] blocks flow to. *)
let compute_post (f : Func.t) =
  let exits = Cfg.exit_blocks f in
  let preds = Func.preds f in
  let rsuccs b =
    if b = virtual_exit then exits
    else try Hashtbl.find preds b with Not_found -> []
  in
  compute_generic ~succs:rsuccs ~entry:virtual_exit ~nodes:(virtual_exit :: f.Func.blocks)

(** [dominates t a b]: does node [a] dominate node [b]?  Reflexive. *)
let dominates (t : t) a b =
  let rec walk x =
    if x = a then true
    else
      match Hashtbl.find_opt t.idom x with
      | None -> false
      | Some p when p = x -> false
      | Some p -> walk p
  in
  if a = b then Hashtbl.mem t.idom a || a = t.root else (Hashtbl.mem t.idom b && walk b)

let strictly_dominates t a b = a <> b && dominates t a b

let idom_of (t : t) b =
  match Hashtbl.find_opt t.idom b with
  | Some p when p <> b -> Some p
  | _ -> None

(** Dominance frontiers (Cytron et al.), used by SSA construction and
    control-dependence. *)
let frontiers (f : Func.t) (t : t) =
  let df = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace df b []) f.Func.blocks;
  let preds = Func.preds f in
  List.iter
    (fun b ->
      let ps =
        (try Hashtbl.find preds b with Not_found -> [])
        |> List.filter (fun p -> Hashtbl.mem t.idom p)
      in
      match Hashtbl.find_opt t.idom b with
      | Some idom_b when List.length ps >= 2 ->
        List.iter
          (fun p ->
            let runner = ref p in
            let stop = ref false in
            while (not !stop) && !runner <> idom_b do
              let cur = try Hashtbl.find df !runner with Not_found -> [] in
              if not (List.mem b cur) then Hashtbl.replace df !runner (b :: cur);
              match Hashtbl.find_opt t.idom !runner with
              | Some up when up <> !runner -> runner := up
              | _ -> stop := true
            done)
          ps
      | _ -> ())
    f.Func.blocks;
  df
