(** Natural-loop detection and the raw loop nesting forest.

    This is the low-level substrate equivalent of LLVM's LoopInfo.  NOELLE's
    richer loop abstractions (loop structure LS, canonical loop L, forest FR)
    are built on top of this in [lib/core]. *)

module IntSet = Set.Make (Int)

type loop = {
  header : int;
  mutable blocks : IntSet.t;        (** all blocks of the loop, incl. header *)
  mutable latches : int list;       (** blocks with a back edge to the header *)
  mutable parent : loop option;
  mutable children : loop list;
  mutable depth : int;              (** 1 for outermost *)
}

type t = {
  loops : loop list;                (** all loops, outermost first *)
  by_header : (int, loop) Hashtbl.t;
  block_loop : (int, loop) Hashtbl.t;  (** innermost loop containing a block *)
}

(** Detect natural loops of [f] using its dominator tree. *)
let compute (f : Func.t) : t =
  let dt = Dom.compute f in
  let preds = Func.preds f in
  let reach = Cfg.reachable f in
  let by_header : (int, loop) Hashtbl.t = Hashtbl.create 8 in
  (* find back edges: b -> h where h dominates b *)
  List.iter
    (fun b ->
      if Hashtbl.mem reach b then
        List.iter
          (fun h ->
            if Dom.dominates dt h b then begin
              let l =
                match Hashtbl.find_opt by_header h with
                | Some l -> l
                | None ->
                  let l =
                    { header = h; blocks = IntSet.singleton h; latches = [];
                      parent = None; children = []; depth = 1 }
                  in
                  Hashtbl.replace by_header h l;
                  l
              in
              l.latches <- l.latches @ [ b ];
              (* walk backwards from the latch to the header *)
              let stack = ref [ b ] in
              while !stack <> [] do
                let x = List.hd !stack in
                stack := List.tl !stack;
                if not (IntSet.mem x l.blocks) then begin
                  l.blocks <- IntSet.add x l.blocks;
                  List.iter
                    (fun p -> if Hashtbl.mem reach p then stack := p :: !stack)
                    (try Hashtbl.find preds x with Not_found -> [])
                end
              done
            end)
          (Func.successors f b))
    f.Func.blocks;
  let loops = Hashtbl.fold (fun _ l acc -> l :: acc) by_header [] in
  (* nesting: parent = smallest strictly-containing loop *)
  List.iter
    (fun l ->
      let candidates =
        List.filter
          (fun p ->
            p != l && IntSet.mem l.header p.blocks && IntSet.subset l.blocks p.blocks)
          loops
      in
      let parent =
        List.fold_left
          (fun best p ->
            match best with
            | None -> Some p
            | Some b ->
              if IntSet.cardinal p.blocks < IntSet.cardinal b.blocks then Some p
              else best)
          None candidates
      in
      l.parent <- parent;
      match parent with Some p -> p.children <- l :: p.children | None -> ())
    loops;
  let rec set_depth d l =
    l.depth <- d;
    List.iter (set_depth (d + 1)) l.children
  in
  List.iter (fun l -> if l.parent = None then set_depth 1 l) loops;
  (* innermost loop per block *)
  let block_loop = Hashtbl.create 16 in
  List.iter
    (fun l ->
      IntSet.iter
        (fun b ->
          match Hashtbl.find_opt block_loop b with
          | Some cur when cur.depth >= l.depth -> ()
          | _ -> Hashtbl.replace block_loop b l)
        l.blocks)
    loops;
  let ordered =
    List.sort
      (fun a b ->
        if a.depth <> b.depth then compare a.depth b.depth
        else compare a.header b.header)
      loops
  in
  { loops = ordered; by_header; block_loop }

let loop_of_header (t : t) h = Hashtbl.find_opt t.by_header h

(** Innermost loop containing block [b], if any. *)
let innermost (t : t) b = Hashtbl.find_opt t.block_loop b

let contains (l : loop) b = IntSet.mem b l.blocks

(** Exit edges: (from inside, to outside) pairs in deterministic order. *)
let exit_edges (f : Func.t) (l : loop) =
  IntSet.fold
    (fun b acc ->
      List.fold_left
        (fun acc s -> if IntSet.mem s l.blocks then acc else (b, s) :: acc)
        acc (Func.successors f b))
    l.blocks []
  |> List.sort compare

(** Blocks outside the loop that loop blocks branch to. *)
let exit_targets f l =
  exit_edges f l |> List.map snd |> List.sort_uniq compare

(** The unique preheader: the only predecessor of the header outside the
    loop, provided the header is its only successor. *)
let preheader (f : Func.t) (l : loop) =
  let preds = Func.preds f in
  let outside =
    (try Hashtbl.find preds l.header with Not_found -> [])
    |> List.filter (fun p -> not (IntSet.mem p l.blocks))
  in
  match outside with
  | [ p ] when Func.successors f p = [ l.header ] -> Some p
  | _ -> None

(** Instructions of the loop in block layout order. *)
let insts (f : Func.t) (l : loop) =
  List.concat_map
    (fun bid -> if IntSet.mem bid l.blocks then (Func.block f bid).Func.insts else [])
    f.Func.blocks
  |> List.map (Func.inst f)

(** Loops ordered innermost-first (deepest depth first). *)
let innermost_first (t : t) =
  List.sort
    (fun a b ->
      if a.depth <> b.depth then compare b.depth a.depth
      else compare a.header b.header)
    t.loops
