(** Instructions and SSA values.

    An SSA value ({!type:value}) is either a constant, a function argument,
    the result of an instruction (referenced by the instruction's
    function-unique id), or the address of a global/function.  Instructions
    ({!type:inst}) are mutable records owned by a {!Func.t}; passes rewrite
    the [op] field in place and {!Builder} keeps block instruction lists
    consistent. *)

(** Integer binary operators.  Shifts mask their amount to 0..63. *)
type bin = Add | Sub | Mul | Sdiv | Srem | And | Or | Xor | Shl | Ashr

(** Floating-point binary operators. *)
type fbin = Fadd | Fsub | Fmul | Fdiv

(** Comparison predicates (shared between integer and float compares). *)
type cmp = Eq | Ne | Slt | Sle | Sgt | Sge

(** Casts between the three first-class types. *)
type cast = Sitofp | Fptosi | Ptrtoint | Inttoptr

type value =
  | Cint of int64       (** integer literal *)
  | Cfloat of float     (** float literal *)
  | Null                (** the null pointer *)
  | Arg of int          (** argument [i] of the enclosing function *)
  | Reg of int          (** result of the instruction with this id *)
  | Glob of string      (** address of a global variable or function *)

type op =
  | Bin of bin * value * value
  | Fbin of fbin * value * value
  | Icmp of cmp * value * value           (** result is i64 0/1 *)
  | Fcmp of cmp * value * value
  | Cast of cast * value
  | Alloca of value                       (** stack-allocate [n] words; result ptr *)
  | Load of value                         (** load one word from ptr *)
  | Store of value * value                (** [Store (v, ptr)] stores [v] to [ptr] *)
  | Gep of value * value                  (** [Gep (base, idx)] = base + idx words *)
  | Call of value * value list            (** callee ([Glob f] if direct) and arguments *)
  | Phi of (int * value) list             (** incoming (predecessor block id, value) *)
  | Select of value * value * value       (** [Select (c, t, f)] *)
  | Br of int                             (** unconditional branch to block id *)
  | Cbr of value * int * int              (** conditional branch: nonzero -> first *)
  | Ret of value option
  | Unreachable

type inst = {
  id : int;                (** function-unique, deterministic id *)
  mutable op : op;
  mutable ty : Ty.t;       (** type of the produced value ([Void] if none) *)
  mutable parent : int;    (** id of the owning basic block *)
}

let is_terminator_op = function
  | Br _ | Cbr _ | Ret _ | Unreachable -> true
  | _ -> false

let is_terminator i = is_terminator_op i.op

(** [operands op] lists the value operands of [op] in a fixed order. *)
let operands = function
  | Bin (_, a, b) | Fbin (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b)
  | Store (a, b) | Gep (a, b) -> [ a; b ]
  | Cast (_, a) | Alloca a | Load a -> [ a ]
  | Call (f, args) -> f :: args
  | Phi incs -> List.map snd incs
  | Select (a, b, c) -> [ a; b; c ]
  | Cbr (v, _, _) -> [ v ]
  | Ret (Some v) -> [ v ]
  | Br _ | Ret None | Unreachable -> []

(** [map_operands f op] rewrites every value operand of [op] with [f]. *)
let map_operands f = function
  | Bin (o, a, b) -> Bin (o, f a, f b)
  | Fbin (o, a, b) -> Fbin (o, f a, f b)
  | Icmp (o, a, b) -> Icmp (o, f a, f b)
  | Fcmp (o, a, b) -> Fcmp (o, f a, f b)
  | Cast (k, a) -> Cast (k, f a)
  | Alloca a -> Alloca (f a)
  | Load a -> Load (f a)
  | Store (a, b) -> Store (f a, f b)
  | Gep (a, b) -> Gep (f a, f b)
  | Call (c, args) -> Call (f c, List.map f args)
  | Phi incs -> Phi (List.map (fun (b, v) -> (b, f v)) incs)
  | Select (a, b, c) -> Select (f a, f b, f c)
  | Cbr (v, t, e) -> Cbr (f v, t, e)
  | Ret (Some v) -> Ret (Some (f v))
  | (Br _ | Ret None | Unreachable) as t -> t

(** Block successors of a terminator ([[]] for non-terminators). *)
let successors = function
  | Br b -> [ b ]
  | Cbr (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | _ -> []

(** [uses_reg op r] is true when [op] mentions the SSA register [r]. *)
let uses_reg op r = List.exists (function Reg x -> x = r | _ -> false) (operands op)

(** Does this operation read memory? (Calls are handled separately.) *)
let reads_memory = function Load _ -> true | _ -> false

(** Does this operation write memory? (Calls are handled separately.) *)
let writes_memory = function Store _ -> true | _ -> false

(** Memory-touching instructions relevant to dependence analysis. *)
let is_memory_op = function Load _ | Store _ | Call _ -> true | _ -> false

let value_equal (a : value) (b : value) =
  match (a, b) with
  | Cint x, Cint y -> Int64.equal x y
  | Cfloat x, Cfloat y -> Float.equal x y
  | Null, Null -> true
  | Arg x, Arg y -> x = y
  | Reg x, Reg y -> x = y
  | Glob x, Glob y -> String.equal x y
  | _ -> false

let bin_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv" | Srem -> "srem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Ashr -> "ashr"

let fbin_to_string = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cmp_to_string = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle" | Sgt -> "sgt" | Sge -> "sge"

let cast_to_string = function
  | Sitofp -> "sitofp" | Fptosi -> "fptosi"
  | Ptrtoint -> "ptrtoint" | Inttoptr -> "inttoptr"
