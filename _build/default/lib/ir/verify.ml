(** IR verifier.

    Checks structural well-formedness of functions and modules; analyses
    and transformations assume a verified module, and the test-suite runs
    the verifier after every transformation. *)

exception Invalid of string

let failv fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let verify_func ?(m : Irmod.t option) (f : Func.t) =
  if f.Func.is_declaration then ()
  else begin
    if f.Func.blocks = [] then failv "%s: no blocks" f.Func.fname;
    (* block structure *)
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        (match List.rev b.Func.insts with
        | [] -> failv "%s/%s: empty block" f.Func.fname b.Func.label
        | last :: _ ->
          if not (Instr.is_terminator (Func.inst f last)) then
            failv "%s/%s: missing terminator" f.Func.fname b.Func.label);
        let rec check_mid = function
          | [] | [ _ ] -> ()
          | i :: rest ->
            if Instr.is_terminator (Func.inst f i) then
              failv "%s/%s: terminator %d in the middle of a block" f.Func.fname
                b.Func.label i;
            check_mid rest
        in
        check_mid b.Func.insts;
        (* phis grouped at the front *)
        let seen_nonphi = ref false in
        List.iter
          (fun id ->
            match (Func.inst f id).Instr.op with
            | Instr.Phi _ ->
              if !seen_nonphi then
                failv "%s/%s: phi %d after non-phi instruction" f.Func.fname
                  b.Func.label id
            | _ -> seen_nonphi := true)
          b.Func.insts;
        List.iter
          (fun id ->
            let i = Func.inst f id in
            if i.Instr.parent <> bid then
              failv "%s/%s: inst %d has wrong parent %d" f.Func.fname b.Func.label
                id i.Instr.parent)
          b.Func.insts)
      f.Func.blocks;
    (* operand sanity *)
    let nparams = Array.length f.Func.params in
    Func.iter_insts
      (fun i ->
        List.iter
          (function
            | Instr.Reg r ->
              if Func.inst_opt f r = None then
                failv "%s: inst %d uses undefined register %%%d" f.Func.fname
                  i.Instr.id r
            | Instr.Arg a ->
              if a < 0 || a >= nparams then
                failv "%s: inst %d uses invalid argument %d" f.Func.fname
                  i.Instr.id a
            | Instr.Glob g -> (
              match m with
              | None -> ()
              | Some m ->
                if Irmod.global_opt m g = None && Irmod.func_opt m g = None then
                  failv "%s: inst %d references unknown global @%s" f.Func.fname
                    i.Instr.id g)
            | _ -> ())
          (Instr.operands i.Instr.op);
        List.iter
          (fun s ->
            if Hashtbl.find_opt f.Func.blks s = None then
              failv "%s: inst %d branches to unknown block %d" f.Func.fname
                i.Instr.id s)
          (Instr.successors i.Instr.op))
      f;
    (* phi incoming lists match CFG predecessors (for reachable blocks) *)
    let preds = Func.preds f in
    let reach = Cfg.reachable f in
    List.iter
      (fun bid ->
        if Hashtbl.mem reach bid then
          let ps = List.sort compare (try Hashtbl.find preds bid with Not_found -> []) in
          List.iter
            (fun i ->
              match i.Instr.op with
              | Instr.Phi incs ->
                let inc = List.sort compare (List.map fst incs) in
                let inc_reach = List.filter (fun p -> Hashtbl.mem reach p) inc in
                let ps_reach = List.filter (fun p -> Hashtbl.mem reach p) ps in
                if inc_reach <> ps_reach then
                  failv "%s/%s: phi %d incoming blocks do not match predecessors"
                    f.Func.fname (Func.block f bid).Func.label i.Instr.id
              | _ -> ())
            (Func.insts_of_block f bid))
      f.Func.blocks;
    (* SSA: definitions dominate uses *)
    let dt = Dom.compute f in
    let block_pos = Hashtbl.create 64 in
    List.iter
      (fun bid ->
        List.iteri (fun k id -> Hashtbl.replace block_pos id (bid, k))
          (Func.block f bid).Func.insts)
      f.Func.blocks;
    Func.iter_insts
      (fun user ->
        if Hashtbl.mem reach user.Instr.parent then
          match user.Instr.op with
          | Instr.Phi incs ->
            List.iter
              (fun (pred, v) ->
                match v with
                | Instr.Reg r ->
                  let db, _ = Hashtbl.find block_pos r in
                  if Hashtbl.mem reach pred && not (Dom.dominates dt db pred) then
                    failv "%s: phi %d operand %%%d does not dominate predecessor"
                      f.Func.fname user.Instr.id r
                | _ -> ())
              incs
          | op ->
            List.iter
              (function
                | Instr.Reg r ->
                  let db, dk = Hashtbl.find block_pos r in
                  let ub, uk = Hashtbl.find block_pos user.Instr.id in
                  let ok =
                    if db = ub then dk < uk else Dom.strictly_dominates dt db ub
                  in
                  if not ok then
                    failv "%s: use of %%%d in inst %d is not dominated by its def"
                      f.Func.fname r user.Instr.id
                | _ -> ())
              (Instr.operands op))
      f
  end

(** Verify every defined function of [m]. *)
let verify_module (m : Irmod.t) =
  List.iter (verify_func ~m) (Irmod.defined_functions m)

(** [check m] returns [Ok ()] or [Error message]. *)
let check (m : Irmod.t) =
  match verify_module m with
  | () -> Ok ()
  | exception Invalid msg -> Error msg
