(** Types of the IR.

    The IR uses a deliberately small type system modelled on modern LLVM
    (opaque pointers): 64-bit integers, 64-bit floats, an opaque pointer
    type, [void] for functions that return nothing, and function types for
    declarations and indirect calls.  Aggregates are represented as sized
    allocations of words rather than first-class types; this matches the
    word-granularity memory model of the interpreter ({!Interp}). *)

type t =
  | I64        (** 64-bit two's-complement integer (also used for booleans) *)
  | F64        (** IEEE-754 double *)
  | Ptr        (** opaque pointer (word-granularity address) *)
  | Void       (** absence of a value; only valid as a return type *)
  | Fun of t list * t  (** function type: parameter types and return type *)

let rec to_string = function
  | I64 -> "i64"
  | F64 -> "f64"
  | Ptr -> "ptr"
  | Void -> "void"
  | Fun (ps, r) ->
    Printf.sprintf "%s(%s)" (to_string r)
      (String.concat ", " (List.map to_string ps))

let pp fmt t = Format.pp_print_string fmt (to_string t)

let rec equal a b =
  match (a, b) with
  | I64, I64 | F64, F64 | Ptr, Ptr | Void, Void -> true
  | Fun (p1, r1), Fun (p2, r2) ->
    List.length p1 = List.length p2 && List.for_all2 equal p1 p2 && equal r1 r2
  | _ -> false

(** [is_first_class t] is true for types that SSA values may carry. *)
let is_first_class = function I64 | F64 | Ptr -> true | Void | Fun _ -> false
