(** Control-flow graph utilities over {!Func}. *)

(** Blocks reachable from the entry, in reverse postorder. *)
let reverse_postorder (f : Func.t) =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem visited b) then begin
      Hashtbl.replace visited b ();
      List.iter dfs (Func.successors f b);
      order := b :: !order
    end
  in
  if f.Func.blocks <> [] then dfs (Func.entry f);
  !order

(** Set of blocks reachable from entry. *)
let reachable (f : Func.t) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace tbl b ()) (reverse_postorder f);
  tbl

(** Remove blocks not reachable from the entry (fixing up phis).  Returns
    the number of blocks removed. *)
let prune_unreachable (f : Func.t) =
  let live = reachable f in
  let dead = List.filter (fun b -> not (Hashtbl.mem live b)) f.Func.blocks in
  List.iter
    (fun bid ->
      List.iter
        (fun s -> if Hashtbl.mem live s then Builder.remove_phi_incoming f s ~pred:bid)
        (Func.successors f bid))
    dead;
  List.iter
    (fun bid ->
      let b = Func.block f bid in
      List.iter (fun id -> Hashtbl.remove f.Func.body id) b.Func.insts;
      Hashtbl.remove f.Func.blks bid)
    dead;
  f.Func.blocks <- List.filter (fun b -> Hashtbl.mem live b) f.Func.blocks;
  List.length dead

(** Exit blocks: blocks whose terminator is [Ret] or [Unreachable]. *)
let exit_blocks (f : Func.t) =
  List.filter
    (fun b ->
      match Func.terminator f b with
      | Some { Instr.op = Instr.Ret _ | Instr.Unreachable; _ } -> true
      | _ -> false)
    f.Func.blocks
