(** Modular alias-analysis stack.

    NOELLE's PDG is powered by a list of collaborating alias analyses
    (SCAF, SVF, plus LLVM's own); each analysis may answer a query or
    decline, and the first definitive answer wins (§2.1: "NOELLE's modular
    design makes it easy to extend the list of external code analyses").
    We reproduce that architecture: {!analysis} is the plug-in interface,
    {!baseline} is the LLVM-equivalent conservative analysis, and
    {!Andersen} (in [andersen.ml]) is the state-of-the-art stand-in.
    Figure 3 measures the precision gap between the [baseline]-only stack
    and the full NOELLE stack. *)

type result = No_alias | May_alias | Must_alias

(** Abstract base object a pointer value is derived from. *)
type base =
  | Balloca of int        (** alloca instruction id *)
  | Bglobal of string
  | Bmalloc of int        (** malloc call-site instruction id *)
  | Barg of int           (** incoming pointer argument *)
  | Bnull
  | Bunknown

(** Trace a pointer value back to its base object within [f]. *)
let rec base_of (f : Func.t) (v : Instr.value) : base =
  match v with
  | Instr.Glob g -> Bglobal g
  | Instr.Null -> Bnull
  | Instr.Arg i -> Barg i
  | Instr.Cint _ | Instr.Cfloat _ -> Bunknown
  | Instr.Reg r -> (
    match Func.inst_opt f r with
    | None -> Bunknown
    | Some i -> (
      match i.Instr.op with
      | Instr.Alloca _ -> Balloca r
      | Instr.Gep (p, _) -> base_of f p
      | Instr.Call (Instr.Glob "malloc", _) -> Bmalloc r
      | Instr.Select (_, a, b) ->
        let ba = base_of f a and bb = base_of f b in
        if ba = bb then ba else Bunknown
      | _ -> Bunknown))

(** Constant word offset of [v] from its base, if it is entirely constant. *)
let rec const_offset (f : Func.t) (v : Instr.value) : int64 option =
  match v with
  | Instr.Glob _ | Instr.Null | Instr.Arg _ -> Some 0L
  | Instr.Reg r -> (
    match Func.inst_opt f r with
    | None -> None
    | Some i -> (
      match i.Instr.op with
      | Instr.Alloca _ | Instr.Call (Instr.Glob "malloc", _) -> Some 0L
      | Instr.Gep (p, Instr.Cint c) ->
        Option.map (Int64.add c) (const_offset f p)
      | _ -> None))
  | _ -> None

(** Does the address of alloca [r] escape [f] (stored, passed to a call,
    converted to an integer)? *)
let alloca_escapes (f : Func.t) (r : int) =
  let escapes = ref false in
  (* escape propagates through geps/selects/phis derived from the alloca *)
  let derived = Hashtbl.create 8 in
  Hashtbl.replace derived r ();
  let changed = ref true in
  while !changed do
    changed := false;
    Func.iter_insts
      (fun i ->
        let from_derived =
          List.exists
            (function Instr.Reg x -> Hashtbl.mem derived x | _ -> false)
            (Instr.operands i.Instr.op)
        in
        if from_derived && not (Hashtbl.mem derived i.Instr.id) then
          match i.Instr.op with
          | Instr.Gep _ | Instr.Select _ | Instr.Phi _ ->
            Hashtbl.replace derived i.Instr.id ();
            changed := true
          | _ -> ())
      f
  done;
  Func.iter_insts
    (fun i ->
      let mentions_derived vs =
        List.exists (function Instr.Reg x -> Hashtbl.mem derived x | _ -> false) vs
      in
      match i.Instr.op with
      | Instr.Store (v, _) when mentions_derived [ v ] -> escapes := true
      | Instr.Call (_, args) when mentions_derived args -> escapes := true
      | Instr.Cast (Instr.Ptrtoint, v) when mentions_derived [ v ] -> escapes := true
      | Instr.Ret (Some v) when mentions_derived [ v ] -> escapes := true
      | _ -> ())
    f;
  !escapes

(** A pluggable alias analysis.  [alias] may decline with [None]; a
    definitive [Some No_alias]/[Some Must_alias] short-circuits the stack.
    [call_may_touch] answers whether a call instruction may read or write
    the object behind a pointer ([None] = no opinion). *)
type analysis = {
  aname : string;
  alias : Irmod.t -> Func.t -> Instr.value -> Instr.value -> result option;
  call_may_touch : Irmod.t -> Func.t -> Instr.inst -> Instr.value -> bool option;
  calls_may_conflict : Irmod.t -> Func.t -> Instr.inst -> Instr.inst -> bool option;
}

type stack = analysis list

(* ------------------------------------------------------------------ *)
(* Baseline analysis: the LLVM-equivalent conservative rules           *)
(* ------------------------------------------------------------------ *)

(** Builtins that never touch IR-visible memory and have no ordering
    constraints (the analogue of LLVM intrinsics with
    [inaccessiblememonly] + [speculatable]). *)
let pure_builtins =
  [ "sqrt"; "exp"; "log"; "sin"; "cos"; "fabs"; "floor"; "pow";
    "i64_min"; "i64_max"; "carat_guard"; "os_callback" ]

(** Builtins with ordered side effects (I/O, PRVG state, timers): they do
    not touch program memory, but two of them must not be reordered with
    respect to each other.  This is what makes a [rand()] sequence a
    genuine loop-carried dependence — the very dependence PRVJeeves and
    HELIX exist to deal with. *)
let ordered_builtins = [ "print"; "print_float"; "rand"; "srand"; "clock" ]

let is_pure_builtin = function
  | Instr.Glob g -> List.mem g pure_builtins
  | _ -> false

let is_ordered_builtin = function
  | Instr.Glob g -> List.mem g ordered_builtins
  | _ -> false

(** malloc/free manage allocation metadata but do not read or write any
    object the program can name through other pointers. *)
let is_alloc_builtin = function
  | Instr.Glob ("malloc" | "free") -> true
  | _ -> false

(** Structural must-alias: two pointers are the same address when they are
    the same SSA value or geps with identical (recursively same) base and
    index operands (BasicAA-style). *)
let rec same_address (f : Func.t) p1 p2 =
  Instr.value_equal p1 p2
  ||
  match (p1, p2) with
  | Instr.Reg a, Instr.Reg b -> (
    match (Func.inst_opt f a, Func.inst_opt f b) with
    | Some { Instr.op = Instr.Gep (b1, i1); _ }, Some { Instr.op = Instr.Gep (b2, i2); _ }
      ->
      Instr.value_equal i1 i2 && same_address f b1 b2
    | _ -> false)
  | _ -> false

let baseline_alias (_m : Irmod.t) (f : Func.t) p1 p2 =
  if same_address f p1 p2 then Some Must_alias
  else
    let b1 = base_of f p1 and b2 = base_of f p2 in
    match (b1, b2) with
    | Bnull, _ | _, Bnull -> Some No_alias
    | Bunknown, _ | _, Bunknown -> None
    | Balloca a, Balloca b when a <> b -> Some No_alias
    | Bglobal a, Bglobal b when a <> b -> Some No_alias
    | Bmalloc a, Bmalloc b when a <> b -> Some No_alias
    | Balloca a, (Bglobal _ | Bmalloc _ | Barg _)
    | (Bglobal _ | Bmalloc _ | Barg _), Balloca a ->
      if alloca_escapes f a then None else Some No_alias
    | Bglobal _, Bmalloc _ | Bmalloc _, Bglobal _ -> Some No_alias
    | Barg a, Barg b when a = b -> None
    | Barg _, (Bglobal _ | Bmalloc _) | (Bglobal _ | Bmalloc _), Barg _ ->
      None (* an argument may point into a global or heap object *)
    | _ ->
      (* same base object: compare constant offsets *)
      if b1 = b2 then
        match (const_offset f p1, const_offset f p2) with
        | Some o1, Some o2 ->
          if Int64.equal o1 o2 then Some Must_alias else Some No_alias
        | _ -> None
      else None

let baseline_call_may_touch (_m : Irmod.t) (_f : Func.t) (call : Instr.inst) _ptr =
  match call.Instr.op with
  | Instr.Call (callee, _)
    when is_pure_builtin callee || is_alloc_builtin callee
         || is_ordered_builtin callee ->
    Some false
  | _ -> None (* unknown call: conservatively may touch anything *)

let baseline_calls_conflict (_m : Irmod.t) (_f : Func.t) c1 c2 =
  let classify (c : Instr.inst) =
    match c.Instr.op with
    | Instr.Call (callee, _) ->
      if is_ordered_builtin callee then `Ordered
      else if is_pure_builtin callee || is_alloc_builtin callee then `Pure
      else `Unknown
    | _ -> `Unknown
  in
  match (classify c1, classify c2) with
  | `Ordered, `Ordered -> Some true  (* I/O and PRVG order must be preserved *)
  | `Pure, _ | _, `Pure -> Some false
  | `Ordered, `Unknown | `Unknown, `Ordered ->
    None (* the unknown callee may itself perform ordered effects *)
  | `Unknown, `Unknown -> None

let baseline : analysis =
  {
    aname = "baseline";
    alias = baseline_alias;
    call_may_touch = baseline_call_may_touch;
    calls_may_conflict = baseline_calls_conflict;
  }

(* ------------------------------------------------------------------ *)
(* Stack combinators                                                   *)
(* ------------------------------------------------------------------ *)

(** Query the stack; the first definitive answer wins, defaulting to
    [May_alias]. *)
let alias (stack : stack) m f p1 p2 =
  let rec go = function
    | [] -> May_alias
    | a :: rest -> (
      match a.alias m f p1 p2 with
      | Some r -> r
      | None -> go rest)
  in
  go stack

let call_may_touch (stack : stack) m f call ptr =
  let rec go = function
    | [] -> true
    | a :: rest -> (
      match a.call_may_touch m f call ptr with
      | Some r -> r
      | None -> go rest)
  in
  go stack

let calls_may_conflict (stack : stack) m f c1 c2 =
  let rec go = function
    | [] -> true
    | a :: rest -> (
      match a.calls_may_conflict m f c1 c2 with
      | Some r -> r
      | None -> go rest)
  in
  go stack

(** Pointer operand of a memory instruction, if any. *)
let pointer_operand (i : Instr.inst) =
  match i.Instr.op with
  | Instr.Load p -> Some p
  | Instr.Store (_, p) -> Some p
  | _ -> None

(** May two memory instructions (load/store/call) conflict (at least one
    write to a common location)?  This is the query the PDG builder uses. *)
let may_conflict (stack : stack) m f (i1 : Instr.inst) (i2 : Instr.inst) =
  match (i1.Instr.op, i2.Instr.op) with
  | Instr.Load _, Instr.Load _ -> false
  | Instr.Call _, Instr.Call _ -> calls_may_conflict stack m f i1 i2
  | Instr.Call _, (Instr.Load _ | Instr.Store _) ->
    call_may_touch stack m f i1 (Option.get (pointer_operand i2))
  | (Instr.Load _ | Instr.Store _), Instr.Call _ ->
    call_may_touch stack m f i2 (Option.get (pointer_operand i1))
  | (Instr.Load _ | Instr.Store _), (Instr.Load _ | Instr.Store _) ->
    alias stack m f
      (Option.get (pointer_operand i1))
      (Option.get (pointer_operand i2))
    <> No_alias
  | _ -> false
