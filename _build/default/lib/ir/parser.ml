(** Parser for the textual IR emitted by {!Printer}.

    Hand-written lexer + recursive-descent parser.  Instruction ids and
    block labels are preserved exactly, so metadata keyed by them (profiles,
    embedded PDGs) survives a print/parse round trip. *)

exception Parse_error of string

type tok =
  | ID of string
  | REG of string
  | GLOB of string
  | INT of int64
  | FLOAT of float
  | STR of string
  | LPAR | RPAR | LBRACE | RBRACE | LBRACK | RBRACK
  | EQ | COMMA | COLON
  | EOF

let tok_str = function
  | ID s -> s
  | REG s -> "%" ^ s
  | GLOB s -> "@" ^ s
  | INT n -> Int64.to_string n
  | FLOAT f -> string_of_float f
  | STR s -> Printf.sprintf "%S" s
  | LPAR -> "(" | RPAR -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACK -> "[" | RBRACK -> "]" | EQ -> "=" | COMMA -> "," | COLON -> ":"
  | EOF -> "<eof>"

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let is_id_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let tokenize (src : string) : (tok * int) array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then fail !line "unterminated string";
        (match src.[!i] with
        | '"' -> fin := true
        | '\\' ->
          incr i;
          if !i >= n then fail !line "bad escape";
          Buffer.add_char b
            (match src.[!i] with 'n' -> '\n' | 't' -> '\t' | c -> c)
        | c -> Buffer.add_char b c);
        incr i
      done;
      push (STR (Buffer.contents b))
    end
    else if c = '%' || c = '@' then begin
      let kind = c in
      incr i;
      let start = !i in
      while !i < n && is_id_char src.[!i] do incr i done;
      let name = String.sub src start (!i - start) in
      if name = "" then fail !line "empty identifier";
      push (if kind = '%' then REG name else GLOB name)
    end
    else if (c >= '0' && c <= '9')
            || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let start = !i in
      if c = '-' then incr i;
      let isfloat = ref false in
      let continue_ = ref true in
      while !continue_ && !i < n do
        let d = src.[!i] in
        if d >= '0' && d <= '9' then incr i
        else if d = '.' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9'
        then (isfloat := true; incr i)
        else if (d = 'e' || d = 'E')
                && !i + 1 < n
                && (src.[!i + 1] = '-' || src.[!i + 1] = '+'
                    || (src.[!i + 1] >= '0' && src.[!i + 1] <= '9'))
        then (isfloat := true; i := !i + 2)
        else continue_ := false
      done;
      let s = String.sub src start (!i - start) in
      if !isfloat then push (FLOAT (float_of_string s))
      else push (INT (Int64.of_string s))
    end
    else if is_id_char c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do incr i done;
      push (ID (String.sub src start (!i - start)))
    end
    else begin
      (match c with
      | '(' -> push LPAR | ')' -> push RPAR
      | '{' -> push LBRACE | '}' -> push RBRACE
      | '[' -> push LBRACK | ']' -> push RBRACK
      | '=' -> push EQ | ',' -> push COMMA | ':' -> push COLON
      | c -> fail !line (Printf.sprintf "unexpected character %C" c));
      incr i
    end
  done;
  push EOF;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser state                                                       *)
(* ------------------------------------------------------------------ *)

type st = { toks : (tok * int) array; mutable pos : int }

(* the token array always ends with EOF; clamp reads so errors at the end
   of input report a position instead of crashing *)
let idx st = min st.pos (Array.length st.toks - 1)
let peek st = fst st.toks.(idx st)
let line st = snd st.toks.(idx st)
let next st = let t = peek st in st.pos <- st.pos + 1; t

let expect st t =
  let l = line st in
  let got = next st in
  if got <> t then
    fail l (Printf.sprintf "expected %s, got %s" (tok_str t) (tok_str got))

let expect_id st =
  let l = line st in
  match next st with
  | ID s -> s
  | t -> fail l (Printf.sprintf "expected identifier, got %s" (tok_str t))

let ty_of_tag l = function
  | "i64" -> Ty.I64
  | "f64" -> Ty.F64
  | "ptr" -> Ty.Ptr
  | "void" -> Ty.Void
  | s -> fail l (Printf.sprintf "unknown type %s" s)

let is_all_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* ------------------------------------------------------------------ *)
(* Instruction parsing                                                *)
(* ------------------------------------------------------------------ *)

let bin_of_string = function
  | "add" -> Some Instr.Add | "sub" -> Some Instr.Sub | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.Sdiv | "srem" -> Some Instr.Srem
  | "and" -> Some Instr.And | "or" -> Some Instr.Or | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl | "ashr" -> Some Instr.Ashr
  | _ -> None

let fbin_of_string = function
  | "fadd" -> Some Instr.Fadd | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul | "fdiv" -> Some Instr.Fdiv
  | _ -> None

let cmp_of_string l = function
  | "eq" -> Instr.Eq | "ne" -> Instr.Ne | "slt" -> Instr.Slt
  | "sle" -> Instr.Sle | "sgt" -> Instr.Sgt | "sge" -> Instr.Sge
  | s -> fail l (Printf.sprintf "unknown predicate %s" s)

let cast_of_string = function
  | "sitofp" -> Some Instr.Sitofp | "fptosi" -> Some Instr.Fptosi
  | "ptrtoint" -> Some Instr.Ptrtoint | "inttoptr" -> Some Instr.Inttoptr
  | _ -> None

let split_dot s =
  match String.index_opt s '.' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "")

(** Parse a whole module from a string. *)
let parse_module ?(name = "module") (src : string) : Irmod.t =
  let st = { toks = tokenize src; pos = 0 } in
  let name =
    (* an initial [module "name"] directive overrides the default *)
    match (fst st.toks.(0), if Array.length st.toks > 1 then fst st.toks.(1) else EOF) with
    | ID "module", STR s -> s
    | _ -> name
  in
  let m = Irmod.create ~name () in
  let parse_const () =
    match next st with
    | INT n -> Instr.Cint n
    | FLOAT f -> Instr.Cfloat f
    | ID "null" -> Instr.Null
    | t -> fail (line st) (Printf.sprintf "expected constant, got %s" (tok_str t))
  in
  let parse_params () =
    expect st LPAR;
    let ps = ref [] in
    if peek st <> RPAR then begin
      let rec loop () =
        let tag = expect_id st in
        let ty = ty_of_tag (line st) tag in
        (match next st with
        | REG n -> ps := (n, ty) :: !ps
        | t -> fail (line st) (Printf.sprintf "expected parameter name, got %s" (tok_str t)));
        if peek st = COMMA then (ignore (next st); loop ())
      in
      loop ()
    end;
    expect st RPAR;
    List.rev !ps
  in
  let rec top () =
    match next st with
    | EOF -> ()
    | ID "module" ->
      (match next st with STR _ -> () | t -> fail (line st) ("bad module name " ^ tok_str t));
      top ()
    | ID "meta" ->
      let k = (match next st with STR s -> s | t -> fail (line st) ("bad meta key " ^ tok_str t)) in
      expect st EQ;
      let v = (match next st with STR s -> s | t -> fail (line st) ("bad meta value " ^ tok_str t)) in
      Meta.set m.Irmod.meta k v;
      top ()
    | ID "global" ->
      let gname = (match next st with GLOB g -> g | t -> fail (line st) ("bad global " ^ tok_str t)) in
      expect st EQ;
      let size =
        match next st with
        | INT n -> Int64.to_int n
        | t -> fail (line st) ("bad global size " ^ tok_str t)
      in
      let init =
        if peek st = LBRACK then begin
          ignore (next st);
          let vs = ref [] in
          if peek st <> RBRACK then begin
            let rec loop () =
              vs := parse_const () :: !vs;
              if peek st = COMMA then (ignore (next st); loop ())
            in
            loop ()
          end;
          expect st RBRACK;
          Some (Array.of_list (List.rev !vs))
        end
        else None
      in
      Irmod.add_global m { Irmod.gname; size; init };
      top ()
    | ID "declare" ->
      let ret = ty_of_tag (line st) (expect_id st) in
      let fname = (match next st with GLOB g -> g | t -> fail (line st) ("bad name " ^ tok_str t)) in
      let params = parse_params () in
      Irmod.add_func m (Func.declare ~name:fname ~params ~ret);
      top ()
    | ID "define" ->
      let ret = ty_of_tag (line st) (expect_id st) in
      let fname = (match next st with GLOB g -> g | t -> fail (line st) ("bad name " ^ tok_str t)) in
      let params = parse_params () in
      expect st LBRACE;
      let f = Func.create ~name:fname ~params ~ret in
      parse_body f;
      Irmod.add_func m f;
      top ()
    | t -> fail (line st) (Printf.sprintf "unexpected %s at top level" (tok_str t))
  and parse_body (f : Func.t) =
    (* Pre-scan the body (up to the matching '}') to find the maximum
       instruction id and the block labels in order. *)
    let start = st.pos in
    let max_id = ref (-1) in
    let labels = ref [] in
    let j = ref st.pos in
    let fin = ref false in
    while not !fin do
      (match fst st.toks.(!j) with
      | RBRACE -> fin := true
      | EOF -> fail (snd st.toks.(!j)) "unterminated function body"
      | REG r when is_all_digits r && !j + 1 < Array.length st.toks
                   && fst st.toks.(!j + 1) = EQ ->
        max_id := max !max_id (int_of_string r)
      | ID l when !j + 1 < Array.length st.toks && fst st.toks.(!j + 1) = COLON
                  && (!j = start || fst st.toks.(!j - 1) <> LBRACK) ->
        labels := l :: !labels
      | _ -> ());
      incr j
    done;
    f.Func.next_id <- !max_id + 1;
    let label_tbl = Hashtbl.create 8 in
    List.iter
      (fun l ->
        let b = Builder.add_block f ~label:l in
        b.Func.label <- l;
        Hashtbl.replace label_tbl l b.Func.bid)
      (List.rev !labels);
    let bid_of_label l =
      match Hashtbl.find_opt label_tbl l with
      | Some b -> b
      | None -> fail (line st) (Printf.sprintf "unknown label %s" l)
    in
    let param_idx n =
      let found = ref (-1) in
      Array.iteri (fun i (pn, _) -> if pn = n then found := i) f.Func.params;
      if !found < 0 then fail (line st) (Printf.sprintf "unknown value %%%s" n);
      !found
    in
    let parse_value () =
      match next st with
      | INT n -> Instr.Cint n
      | FLOAT x -> Instr.Cfloat x
      | ID "null" -> Instr.Null
      | GLOB g -> Instr.Glob g
      | REG r -> if is_all_digits r then Instr.Reg (int_of_string r) else Instr.Arg (param_idx r)
      | t -> fail (line st) (Printf.sprintf "expected value, got %s" (tok_str t))
    in
    let parse_args () =
      expect st LPAR;
      let args = ref [] in
      if peek st <> RPAR then begin
        let rec loop () =
          args := parse_value () :: !args;
          if peek st = COMMA then (ignore (next st); loop ())
        in
        loop ()
      end;
      expect st RPAR;
      List.rev !args
    in
    let comma () = expect st COMMA in
    (* parse an op given its mnemonic; returns (op, result ty) *)
    let parse_op mnem =
      let l = line st in
      let base, suffix = split_dot mnem in
      match bin_of_string base, fbin_of_string base, cast_of_string base with
      | Some b, _, _ when suffix = "" ->
        let a = parse_value () in comma (); let c = parse_value () in
        (Instr.Bin (b, a, c), Ty.I64)
      | _, Some b, _ when suffix = "" ->
        let a = parse_value () in comma (); let c = parse_value () in
        (Instr.Fbin (b, a, c), Ty.F64)
      | _, _, Some k when suffix = "" ->
        let a = parse_value () in
        let ty = match k with
          | Instr.Sitofp -> Ty.F64 | Instr.Fptosi -> Ty.I64
          | Instr.Ptrtoint -> Ty.I64 | Instr.Inttoptr -> Ty.Ptr
        in
        (Instr.Cast (k, a), ty)
      | _ ->
        (match base with
        | "icmp" ->
          let c = cmp_of_string l suffix in
          let a = parse_value () in comma (); let b = parse_value () in
          (Instr.Icmp (c, a, b), Ty.I64)
        | "fcmp" ->
          let c = cmp_of_string l suffix in
          let a = parse_value () in comma (); let b = parse_value () in
          (Instr.Fcmp (c, a, b), Ty.I64)
        | "alloca" -> (Instr.Alloca (parse_value ()), Ty.Ptr)
        | "load" -> (Instr.Load (parse_value ()), ty_of_tag l suffix)
        | "store" ->
          let a = parse_value () in comma (); let p = parse_value () in
          (Instr.Store (a, p), Ty.Void)
        | "gep" ->
          let p = parse_value () in comma (); let idx = parse_value () in
          (Instr.Gep (p, idx), Ty.Ptr)
        | "call" ->
          let callee = parse_value () in
          let args = parse_args () in
          (Instr.Call (callee, args), ty_of_tag l suffix)
        | "phi" ->
          let incs = ref [] in
          while peek st = LBRACK do
            ignore (next st);
            let lbl = expect_id st in
            expect st COLON;
            let v = parse_value () in
            expect st RBRACK;
            incs := (bid_of_label lbl, v) :: !incs
          done;
          (Instr.Phi (List.rev !incs), ty_of_tag l suffix)
        | "select" ->
          let c = parse_value () in comma ();
          let a = parse_value () in comma (); let b = parse_value () in
          (Instr.Select (c, a, b), ty_of_tag l suffix)
        | "br" -> (Instr.Br (bid_of_label (expect_id st)), Ty.Void)
        | "cbr" ->
          let c = parse_value () in comma ();
          let t = bid_of_label (expect_id st) in comma ();
          let e = bid_of_label (expect_id st) in
          (Instr.Cbr (c, t, e), Ty.Void)
        | "ret" ->
          (match peek st with
          | INT _ | FLOAT _ | GLOB _ -> (Instr.Ret (Some (parse_value ())), Ty.Void)
          | ID "null" -> (Instr.Ret (Some (parse_value ())), Ty.Void)
          | REG _ when fst st.toks.(st.pos + 1) <> EQ ->
            (Instr.Ret (Some (parse_value ())), Ty.Void)
          | _ -> (Instr.Ret None, Ty.Void))
        | "unreachable" -> (Instr.Unreachable, Ty.Void)
        | s -> fail l (Printf.sprintf "unknown instruction %s" s))
    in
    let cur_block = ref (-1) in
    let append_inst id op ty =
      let i = { Instr.id; op; ty; parent = !cur_block } in
      Hashtbl.replace f.Func.body id i;
      let b = Func.block f !cur_block in
      b.Func.insts <- b.Func.insts @ [ id ]
    in
    let fin = ref false in
    while not !fin do
      match peek st with
      | RBRACE -> ignore (next st); fin := true
      | ID l when fst st.toks.(st.pos + 1) = COLON ->
        ignore (next st); ignore (next st);
        cur_block := bid_of_label l
      | REG r when is_all_digits r && fst st.toks.(st.pos + 1) = EQ ->
        ignore (next st); ignore (next st);
        let mnem = expect_id st in
        let op, ty = parse_op mnem in
        append_inst (int_of_string r) op ty
      | ID _ ->
        let mnem = expect_id st in
        let op, ty = parse_op mnem in
        append_inst (Func.fresh_id f) op ty
      | t -> fail (line st) (Printf.sprintf "unexpected %s in function body" (tok_str t))
    done
  in
  top ();
  m

(** Parse a module from a file. *)
let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_module ~name:(Filename.remove_extension (Filename.basename path)) s
