(** Peephole simplifications (instcombine-lite).

    Cleans the patterns the Mini-C frontend emits so analyses see canonical
    code: double boolean tests ([icmp ne (icmp ...), 0]), trivial selects,
    constant-foldable arithmetic, and additive identities. *)

open Instr

let is_boolean (f : Func.t) = function
  | Reg r -> (
    match Func.inst_opt f r with
    | Some { op = Icmp _ | Fcmp _; _ } -> true
    | _ -> false)
  | Cint (0L | 1L) -> true
  | _ -> false

(** Run over one function; returns the number of rewrites. *)
let run (f : Func.t) =
  if f.Func.is_declaration then 0
  else begin
    let rewrites = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      let replace id by =
        Builder.replace_uses f ~old:id ~by;
        Builder.remove f id;
        incr rewrites;
        changed := true
      in
      let candidates =
        Func.fold_insts (fun acc i -> i :: acc) [] f |> List.rev
      in
      List.iter
        (fun (i : inst) ->
          if Hashtbl.mem f.Func.body i.id then
            match i.op with
            (* icmp ne (bool), 0  ->  bool *)
            | Icmp (Ne, b, Cint 0L) when is_boolean f b -> replace i.id b
            (* icmp eq (bool), 1  ->  bool *)
            | Icmp (Eq, b, Cint 1L) when is_boolean f b -> replace i.id b
            (* select c, 1, 0 over a boolean  ->  c *)
            | Select (c, Cint 1L, Cint 0L) when is_boolean f c -> replace i.id c
            (* constant folding for integer arithmetic *)
            | Bin (op, Cint a, Cint b) -> (
              let fold v = replace i.id (Cint v) in
              match op with
              | Add -> fold (Int64.add a b)
              | Sub -> fold (Int64.sub a b)
              | Mul -> fold (Int64.mul a b)
              | And -> fold (Int64.logand a b)
              | Or -> fold (Int64.logor a b)
              | Xor -> fold (Int64.logxor a b)
              | Sdiv when not (Int64.equal b 0L) -> fold (Int64.div a b)
              | Srem when not (Int64.equal b 0L) -> fold (Int64.rem a b)
              | Shl -> fold (Int64.shift_left a (Int64.to_int (Int64.logand b 63L)))
              | Ashr -> fold (Int64.shift_right a (Int64.to_int (Int64.logand b 63L)))
              | _ -> ())
            (* additive/multiplicative identities *)
            | Bin (Add, v, Cint 0L) | Bin (Add, Cint 0L, v) -> replace i.id v
            | Bin (Sub, v, Cint 0L) -> replace i.id v
            | Bin (Mul, v, Cint 1L) | Bin (Mul, Cint 1L, v) -> replace i.id v
            | Gep (p, Cint 0L) -> replace i.id p
            | _ -> ())
        candidates
    done;
    !rewrites
  end

let run_module (m : Irmod.t) =
  List.fold_left
    (fun n f ->
      let k = run f in
      (* folding can leave self-referencing trivial phis behind *)
      let p = Builder.simplify_phis f in
      n + k + p)
    0 (Irmod.defined_functions m)
