(** Functions and basic blocks.

    A function owns two id-indexed tables: one for instructions and one for
    basic blocks.  Instruction ids and block ids are drawn from the same
    per-function counter, so every id is unique within the function and is
    deterministic (creation order).  Blocks keep their instructions as an
    ordered id list whose last element is the terminator. *)

type block = {
  bid : int;
  mutable label : string;          (** printable label, unique per function *)
  mutable insts : int list;        (** instruction ids, terminator last *)
}

type t = {
  fname : string;
  params : (string * Ty.t) array;
  ret : Ty.t;
  mutable blocks : int list;       (** block ids in layout order; head = entry *)
  body : (int, Instr.inst) Hashtbl.t;
  blks : (int, block) Hashtbl.t;
  mutable next_id : int;
  mutable is_declaration : bool;   (** true for external/builtin declarations *)
}

let create ~name ~params ~ret =
  {
    fname = name;
    params = Array.of_list params;
    ret;
    blocks = [];
    body = Hashtbl.create 64;
    blks = Hashtbl.create 16;
    next_id = 0;
    is_declaration = false;
  }

let declare ~name ~params ~ret =
  let f = create ~name ~params ~ret in
  f.is_declaration <- true;
  f

let fresh_id (f : t) =
  let id = f.next_id in
  f.next_id <- id + 1;
  id

let entry (f : t) =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" f.fname)

let block (f : t) bid =
  match Hashtbl.find_opt f.blks bid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.block: no block %d in %s" bid f.fname)

let inst (f : t) id =
  match Hashtbl.find_opt f.body id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Func.inst: no inst %d in %s" id f.fname)

let inst_opt (f : t) id = Hashtbl.find_opt f.body id

(** Terminator of a block, if the block is already terminated. *)
let terminator (f : t) bid =
  let b = block f bid in
  match List.rev b.insts with
  | last :: _ ->
    let i = inst f last in
    if Instr.is_terminator i then Some i else None
  | [] -> None

let successors (f : t) bid =
  match terminator f bid with
  | Some i -> Instr.successors i.op
  | None -> []

(** Iterate blocks in layout order. *)
let iter_blocks fn (f : t) = List.iter (fun bid -> fn (block f bid)) f.blocks

(** Iterate instructions in layout order (blocks in order, insts in order). *)
let iter_insts fn (f : t) =
  iter_blocks (fun b -> List.iter (fun id -> fn (inst f id)) b.insts) f

let fold_insts fn acc (f : t) =
  let r = ref acc in
  iter_insts (fun i -> r := fn !r i) f;
  !r

(** All instructions in layout order. *)
let insts (f : t) = List.rev (fold_insts (fun acc i -> i :: acc) [] f)

let num_insts (f : t) = fold_insts (fun n _ -> n + 1) 0 f

(** [defs_in_block f bid] is the set of instruction ids in block [bid]. *)
let insts_of_block (f : t) bid = List.map (inst f) (block f bid).insts

(** [find_label f l] finds the block labelled [l]. *)
let find_label (f : t) l =
  let found = ref None in
  iter_blocks (fun b -> if String.equal b.label l then found := Some b) f;
  !found

(** [users f r] lists instructions whose operands mention SSA register [r].
    Recomputed on demand; the IR does not maintain use lists. *)
let users (f : t) r =
  fold_insts (fun acc i -> if Instr.uses_reg i.op r then i :: acc else acc) [] f
  |> List.rev

(** Predecessor map of the CFG: block id -> predecessor block ids (in layout
    order of the predecessors). *)
let preds (f : t) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace tbl bid []) f.blocks;
  List.iter
    (fun bid ->
      List.iter
        (fun s ->
          let cur = try Hashtbl.find tbl s with Not_found -> [] in
          if not (List.mem bid cur) then Hashtbl.replace tbl s (cur @ [ bid ]))
        (successors f bid))
    f.blocks;
  tbl
