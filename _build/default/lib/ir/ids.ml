(** Deterministic IDs for IR entities (§2.2 "Other abstractions").

    NOELLE attaches deterministic identifiers to instructions, basic blocks,
    loops, and functions so that analysis results embedded as metadata (the
    PDG, profiles) can be re-associated after the IR file is written and
    re-read.  In this IR, instruction ids and block labels are already
    stable across print/parse round trips ({!Parser}); this module defines
    the canonical string keys used in metadata. *)

let inst_key (f : Func.t) (i : Instr.inst) =
  Printf.sprintf "%s.%d" f.Func.fname i.Instr.id

let inst_key' ~fname ~id = Printf.sprintf "%s.%d" fname id

let block_key (f : Func.t) (b : Func.block) =
  Printf.sprintf "%s.%s" f.Func.fname b.Func.label

let block_key_of_id (f : Func.t) bid = block_key f (Func.block f bid)

let func_key (f : Func.t) = f.Func.fname

(** Loops are identified by function plus header label, which is stable. *)
let loop_key (f : Func.t) (l : Loopnest.loop) =
  Printf.sprintf "%s.%s" f.Func.fname (Func.block f l.Loopnest.header).Func.label

(** Parse an instruction key back into (function name, instruction id). *)
let parse_inst_key s =
  match String.rindex_opt s '.' with
  | Some i ->
    let fname = String.sub s 0 i in
    let id = String.sub s (i + 1) (String.length s - i - 1) in
    Option.map (fun id -> (fname, id)) (int_of_string_opt id)
  | None -> None
