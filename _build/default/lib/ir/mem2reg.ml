(** SSA construction: promote allocas to registers.

    The Mini-C frontend lowers every local variable to an [Alloca] plus
    loads/stores; this pass rewrites promotable allocas into SSA form with
    phi nodes placed at iterated dominance frontiers (Cytron et al.),
    mirroring LLVM's mem2reg.  An alloca is promotable when its address is
    only ever used directly as the pointer of a [Load] or the pointer
    operand of a [Store] (never stored itself, indexed, or passed away). *)

open Instr

let promotable (f : Func.t) (a : inst) =
  match a.op with
  | Alloca (Cint 1L) ->
    let ok = ref true in
    Func.iter_insts
      (fun i ->
        match i.op with
        | Load (Reg r) when r = a.id -> ()
        | Store (v, Reg r) when r = a.id ->
          (* storing the alloca's own address somewhere else is an escape *)
          (match v with Reg r2 when r2 = a.id -> ok := false | _ -> ())
        | op -> if Instr.uses_reg op a.id then ok := false)
      f;
    !ok
  | _ -> false

(** Element type of a promotable alloca, inferred from its loads/stores. *)
let alloca_ty (f : Func.t) (a : inst) =
  let ty = ref Ty.I64 in
  Func.iter_insts
    (fun i ->
      match i.op with
      | Load (Reg r) when r = a.id && not (Ty.equal i.ty Ty.I64) -> ty := i.ty
      | _ -> ())
    f;
  !ty

let zero_of = function
  | Ty.F64 -> Cfloat 0.0
  | Ty.Ptr -> Null
  | _ -> Cint 0L

(** Run SSA promotion on [f].  Returns the number of allocas promoted. *)
let run (f : Func.t) =
  if f.Func.is_declaration then 0
  else begin
    ignore (Cfg.prune_unreachable f);
    let allocas =
      Func.fold_insts
        (fun acc i -> if promotable f i then i :: acc else acc)
        [] f
      |> List.rev
    in
    if allocas = [] then 0
    else begin
      let dt = Dom.compute f in
      let df = Dom.frontiers f dt in
      let preds = Func.preds f in
      (* phi placement *)
      let phi_owner : (int, int) Hashtbl.t = Hashtbl.create 16 in
      (* phi inst id -> alloca id *)
      List.iter
        (fun (a : inst) ->
          let ty = alloca_ty f a in
          let def_blocks =
            Func.fold_insts
              (fun acc i ->
                match i.op with
                | Store (_, Reg r) when r = a.id -> i.parent :: acc
                | _ -> acc)
              [] f
            |> List.sort_uniq compare
          in
          let has_phi = Hashtbl.create 8 in
          let work = Queue.create () in
          List.iter (fun b -> Queue.add b work) def_blocks;
          while not (Queue.is_empty work) do
            let b = Queue.pop work in
            List.iter
              (fun fb ->
                if not (Hashtbl.mem has_phi fb) then begin
                  Hashtbl.replace has_phi fb ();
                  let phi = Builder.insert_front f fb (Phi []) ty in
                  Hashtbl.replace phi_owner phi.id a.id;
                  Queue.add fb work
                end)
              (try Hashtbl.find df b with Not_found -> [])
          done)
        allocas;
      (* renaming over the dominator tree *)
      let alloca_tys = Hashtbl.create 8 in
      List.iter (fun a -> Hashtbl.replace alloca_tys a.id (alloca_ty f a)) allocas;
      let dom_children = Hashtbl.create 16 in
      List.iter
        (fun b ->
          match Dom.idom_of dt b with
          | Some p ->
            let cur = try Hashtbl.find dom_children p with Not_found -> [] in
            Hashtbl.replace dom_children p (cur @ [ b ])
          | None -> ())
        f.Func.blocks;
      let cur : (int, Instr.value) Hashtbl.t = Hashtbl.create 8 in
      let value_of aid =
        match Hashtbl.find_opt cur aid with
        | Some v -> v
        | None -> zero_of (Hashtbl.find alloca_tys aid)
      in
      let to_delete = ref [] in
      let rec rename bid (saved : (int * Instr.value option) list) =
        ignore saved;
        let snapshot =
          List.map (fun a -> (a.id, Hashtbl.find_opt cur a.id)) allocas
        in
        List.iter
          (fun (i : inst) ->
            match i.op with
            | Phi _ when Hashtbl.mem phi_owner i.id ->
              Hashtbl.replace cur (Hashtbl.find phi_owner i.id) (Reg i.id)
            | Load (Reg r) when Hashtbl.mem alloca_tys r ->
              Builder.replace_uses f ~old:i.id ~by:(value_of r);
              to_delete := i.id :: !to_delete
            | Store (v, Reg r) when Hashtbl.mem alloca_tys r ->
              Hashtbl.replace cur r v;
              to_delete := i.id :: !to_delete
            | _ -> ())
          (Func.insts_of_block f bid);
        (* fill phi operands in successors *)
        List.iter
          (fun s ->
            List.iter
              (fun (i : inst) ->
                match i.op with
                | Phi incs when Hashtbl.mem phi_owner i.id ->
                  let aid = Hashtbl.find phi_owner i.id in
                  i.op <- Phi (incs @ [ (bid, value_of aid) ])
                | _ -> ())
              (Func.insts_of_block f s))
          (Func.successors f bid);
        List.iter
          (fun c -> rename c [])
          (try Hashtbl.find dom_children bid with Not_found -> []);
        (* restore *)
        List.iter
          (fun (aid, v) ->
            match v with
            | Some v -> Hashtbl.replace cur aid v
            | None -> Hashtbl.remove cur aid)
          snapshot
      in
      rename (Func.entry f) [];
      (* deduplicate phi incoming entries from identical preds (can happen
         with cbr to the same target) *)
      Func.iter_insts
        (fun i ->
          match i.op with
          | Phi incs when Hashtbl.mem phi_owner i.id ->
            let seen = Hashtbl.create 4 in
            i.op <-
              Phi
                (List.filter
                   (fun (p, _) ->
                     if Hashtbl.mem seen p then false
                     else (Hashtbl.replace seen p (); true))
                   incs)
          | _ -> ())
        f;
      List.iter (fun id -> Builder.remove f id) !to_delete;
      List.iter (fun (a : inst) -> Builder.remove f a.id) allocas;
      (* phis in unreachable-from-def paths may reference preds missing
         entries; verifier-level fix: ensure each owned phi has one entry per
         pred *)
      List.iter
        (fun bid ->
          let ps = try Hashtbl.find preds bid with Not_found -> [] in
          List.iter
            (fun (i : inst) ->
              match i.op with
              | Phi incs when Hashtbl.mem phi_owner i.id ->
                let missing =
                  List.filter (fun p -> not (List.mem_assoc p incs)) ps
                in
                let aid = Hashtbl.find phi_owner i.id in
                let z = zero_of (Hashtbl.find alloca_tys aid) in
                if missing <> [] then
                  i.op <- Phi (incs @ List.map (fun p -> (p, z)) missing)
              | _ -> ())
            (Func.insts_of_block f bid))
        f.Func.blocks;
      ignore (Builder.simplify_phis f);
      List.length allocas
    end
  end

(** Promote allocas in every defined function of [m]. *)
let run_module (m : Irmod.t) =
  List.fold_left (fun n f -> n + run f) 0 (Irmod.defined_functions m)
