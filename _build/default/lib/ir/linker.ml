(** IR-level linker.

    Implements the substrate behind [noelle-whole-IR] and [noelle-linker]:
    merging several modules into one whole-program module while preserving
    NOELLE metadata.  Name clashes on defined symbols are an error;
    declarations are satisfied by definitions from any input module. *)

exception Link_error of string

let faill fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

(** Link [ms] (in order) into a fresh module named [name].  Metadata tables
    are merged; a duplicated metadata key must agree on its value. *)
let link ?(name = "whole") (ms : Irmod.t list) : Irmod.t =
  let out = Irmod.create ~name () in
  List.iter
    (fun (m : Irmod.t) ->
      List.iter
        (fun (g : Irmod.global) ->
          match Irmod.global_opt out g.gname with
          | None -> Irmod.add_global out g
          | Some g0 ->
            if g0.size <> g.size then
              faill "global @%s defined with different sizes (%d vs %d)" g.gname
                g0.size g.size
            else if g0.init = None && g.init <> None then
              Irmod.add_global out g
            else if g0.init <> None && g.init <> None && g0.init <> g.init then
              faill "global @%s has conflicting initializers" g.gname)
        (Irmod.globals m);
      List.iter
        (fun (f : Func.t) ->
          match Irmod.func_opt out f.Func.fname with
          | None -> Irmod.add_func out f
          | Some f0 ->
            if f0.Func.is_declaration && not f.Func.is_declaration then begin
              Irmod.remove_func out f0.Func.fname;
              Irmod.add_func out f
            end
            else if (not f0.Func.is_declaration) && not f.Func.is_declaration then
              faill "function @%s defined in multiple modules" f.Func.fname)
        (Irmod.functions m);
      Meta.iter_sorted
        (fun k v ->
          match Meta.get out.Irmod.meta k with
          | None -> Meta.set out.Irmod.meta k v
          | Some v0 when String.equal v v0 -> ()
          | Some v0 ->
            faill "metadata key %s has conflicting values (%s vs %s)" k v0 v)
        m.Irmod.meta)
    ms;
  out
