lib/ir/cfg.ml: Builder Func Hashtbl Instr List
