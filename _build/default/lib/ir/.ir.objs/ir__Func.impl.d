lib/ir/func.ml: Array Hashtbl Instr List Printf String Ty
