lib/ir/ids.ml: Func Instr Loopnest Option Printf String
