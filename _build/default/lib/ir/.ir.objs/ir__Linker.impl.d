lib/ir/linker.ml: Func Irmod List Meta Printf String
