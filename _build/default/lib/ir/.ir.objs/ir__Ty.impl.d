lib/ir/ty.ml: Format List Printf String
