lib/ir/interp.ml: Array Buffer Float Func Hashtbl Instr Int64 Irmod List Printf Ty
