lib/ir/scev.ml: Func Instr Int64 List Loopnest
