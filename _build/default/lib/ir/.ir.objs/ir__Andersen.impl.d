lib/ir/andersen.ml: Alias Array Func Hashtbl Instr Irmod List Set String
