lib/ir/instr.ml: Float Int64 List String Ty
