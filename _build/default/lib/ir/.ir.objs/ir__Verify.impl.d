lib/ir/verify.ml: Array Cfg Dom Func Hashtbl Instr Irmod List Printf
