lib/ir/parser.ml: Array Buffer Builder Filename Func Hashtbl Instr Int64 Irmod List Meta Printf String Ty
