lib/ir/printer.ml: Array Buffer Float Func Instr Int64 Irmod List Meta Printf String Ty
