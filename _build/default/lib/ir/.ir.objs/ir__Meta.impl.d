lib/ir/meta.ml: Hashtbl List Option Printf String
