lib/ir/builder.ml: Array Func Hashtbl Instr List Printf Queue Ty
