lib/ir/dom.ml: Cfg Func Hashtbl List
