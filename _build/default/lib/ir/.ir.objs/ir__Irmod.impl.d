lib/ir/irmod.ml: Func Hashtbl Instr List Meta Printf String
