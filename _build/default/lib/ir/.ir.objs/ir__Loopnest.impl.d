lib/ir/loopnest.ml: Cfg Dom Func Hashtbl Int List Set
