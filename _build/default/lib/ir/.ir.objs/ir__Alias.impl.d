lib/ir/alias.ml: Func Hashtbl Instr Int64 Irmod List Option
