lib/ir/simplify.ml: Builder Func Hashtbl Instr Int64 Irmod List
