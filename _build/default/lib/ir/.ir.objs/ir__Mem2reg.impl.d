lib/ir/mem2reg.ml: Builder Cfg Dom Func Hashtbl Instr Irmod List Queue Ty
