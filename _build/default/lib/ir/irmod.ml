(** IR modules (compilation units).

    A module owns named globals and functions plus a metadata table
    ({!Meta}).  Function order is tracked so printing is deterministic.
    [noelle-whole-IR] and [noelle-linker] (see {!Linker}) merge modules. *)

type global = {
  gname : string;
  size : int;                          (** size in words *)
  init : Instr.value array option;     (** constant initializer (Cint/Cfloat) *)
}

type t = {
  mname : string;
  globals : (string, global) Hashtbl.t;
  funcs : (string, Func.t) Hashtbl.t;
  mutable gorder : string list;        (** globals in declaration order *)
  mutable forder : string list;        (** functions in declaration order *)
  meta : Meta.t;
}

let create ?(name = "module") () =
  {
    mname = name;
    globals = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
    gorder = [];
    forder = [];
    meta = Meta.create ();
  }

let add_global (m : t) (g : global) =
  if not (Hashtbl.mem m.globals g.gname) then m.gorder <- m.gorder @ [ g.gname ];
  Hashtbl.replace m.globals g.gname g

let add_func (m : t) (f : Func.t) =
  if not (Hashtbl.mem m.funcs f.Func.fname) then m.forder <- m.forder @ [ f.Func.fname ];
  Hashtbl.replace m.funcs f.Func.fname f

let remove_func (m : t) name =
  Hashtbl.remove m.funcs name;
  m.forder <- List.filter (fun n -> not (String.equal n name)) m.forder

let func (m : t) name =
  match Hashtbl.find_opt m.funcs name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Irmod.func: no function %s" name)

let func_opt (m : t) name = Hashtbl.find_opt m.funcs name
let global_opt (m : t) name = Hashtbl.find_opt m.globals name

(** Functions in declaration order. *)
let functions (m : t) = List.map (func m) m.forder

(** Functions that have a body, in declaration order. *)
let defined_functions (m : t) =
  List.filter (fun f -> not f.Func.is_declaration) (functions m)

let globals (m : t) =
  List.map (fun n -> Hashtbl.find m.globals n) m.gorder

let iter_funcs fn (m : t) = List.iter fn (functions m)

(** Total number of instructions across all function bodies; the stand-in
    for "binary size" in the Dead Function Elimination experiment. *)
let total_insts (m : t) =
  List.fold_left (fun n f -> n + Func.num_insts f) 0 (defined_functions m)
